package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/engine"
)

func TestFixedCount(t *testing.T) {
	c := FixedCount(7)
	if c.Sample(nil) != 7 || c.Max() != 7 {
		t.Fatal("fixed count broken")
	}
	pmf := c.PMF()
	if err := pmf.Validate(); err != nil {
		t.Fatal(err)
	}
	if pmf.Max() != 7 {
		t.Fatalf("pmf max %d", pmf.Max())
	}
}

func TestUniformCountPMFAndSampling(t *testing.T) {
	u, err := NewUniformCount(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	pmf := u.PMF()
	if err := pmf.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		v := u.Sample(rng)
		if v < 3 || v > 6 {
			t.Fatalf("sample %d out of [3,6]", v)
		}
		seen[v]++
	}
	for v := 3; v <= 6; v++ {
		frac := float64(seen[v]) / 4000
		if math.Abs(frac-0.25) > 0.04 {
			t.Errorf("count %d frequency %.3f, want ~0.25", v, frac)
		}
	}
	if _, err := NewUniformCount(0, 3); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := NewUniformCount(5, 4); err == nil {
		t.Fatal("hi<lo accepted")
	}
}

func TestEmpiricalCountPMFMatchesObservations(t *testing.T) {
	e, err := NewEmpiricalCount([]int{2, 2, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		switch v := e.Sample(rng); v {
		case 2, 5, 9: // observed values only
		default:
			t.Fatalf("sampled unobserved count %d", v)
		}
	}
	pmf := e.PMF()
	if err := pmf.Validate(); err != nil {
		t.Fatal(err)
	}
	if pmf[1] != 0.5 || pmf[4] != 0.25 || pmf[8] != 0.25 {
		t.Fatalf("pmf %v", pmf)
	}
	if e.Max() != 9 {
		t.Fatalf("max %d", e.Max())
	}
	if _, err := NewEmpiricalCount(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewEmpiricalCount([]int{0}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestSizeDistMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	check := func(name string, d SizeDist, relTol float64) {
		t.Helper()
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := d.Sample(rng)
			if v <= 0 {
				t.Fatalf("%s: sample %g not positive", name, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-d.Mean())/d.Mean() > relTol {
			t.Errorf("%s: sample mean %g vs Mean() %g", name, got, d.Mean())
		}
	}
	check("fixed", FixedSize(100), 1e-12)
	u, err := NewUniformSize(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	check("uniform", u, 0.02)
	ln, err := LognormalFromMeanCV(500, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	check("lognormal", ln, 0.05)
	emp, err := NewEmpiricalSize([]float64{1, 2, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	check("empirical", emp, 0.05)
}

func TestLognormalFromMeanCVProperty(t *testing.T) {
	// Property: the analytic mean of the fitted lognormal equals the target.
	f := func(meanRaw, cvRaw uint16) bool {
		mean := 1 + float64(meanRaw)
		cv := 0.1 + float64(cvRaw%300)/100
		ln, err := LognormalFromMeanCV(mean, cv)
		if err != nil {
			return false
		}
		return math.Abs(ln.Mean()-mean)/mean < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeDistValidation(t *testing.T) {
	if _, err := NewUniformSize(0, 5); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := LognormalFromMeanCV(0, 1); err == nil {
		t.Fatal("mean=0 accepted")
	}
	if _, err := NewEmpiricalSize([]float64{1, -2}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func testTemplate(t *testing.T, parts int) *engine.Job {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultCorpusConfig()
	cfg.Partitions = parts
	cfg.PostsPerPartition = 5
	corpus, err := SynthesizeCorpus(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Job{
		Name:  "tpl",
		Input: corpus,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 4},
			{Name: "red", Kind: engine.Result, Deps: []int{0}},
		},
		SizeBytes: 1000,
	}
}

func TestSubJobTruncatesAndScales(t *testing.T) {
	base := testTemplate(t, 10)
	sub, err := SubJob(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Input) != 4 {
		t.Fatalf("sub input %d partitions", len(sub.Input))
	}
	if sub.SizeBytes != 400 {
		t.Fatalf("sub size %d, want 400", sub.SizeBytes)
	}
	if len(base.Input) != 10 || base.SizeBytes != 1000 {
		t.Fatal("SubJob mutated the base")
	}
	// Stage slice is a copy: mutating the clone leaves the base intact.
	sub.Stages[0].OutPartitions = 99
	if base.Stages[0].OutPartitions != 4 {
		t.Fatal("SubJob shares the stage slice with the base")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub job invalid: %v", err)
	}
	if _, err := SubJob(base, 0); err == nil {
		t.Fatal("tasks=0 accepted")
	}
	if _, err := SubJob(base, 11); err == nil {
		t.Fatal("tasks>partitions accepted")
	}
	if _, err := SubJob(nil, 1); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestFixedJobsSource(t *testing.T) {
	tpl := testTemplate(t, 5)
	src := FixedJobs{tpl, tpl}
	if src.Classes() != 2 {
		t.Fatalf("classes %d", src.Classes())
	}
	j, err := src.Job(nil, 1)
	if err != nil || j != tpl {
		t.Fatalf("job %v err %v", j, err)
	}
	if _, err := src.Job(nil, 2); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if _, err := (FixedJobs{nil}).Job(nil, 0); err == nil {
		t.Fatal("nil template accepted")
	}
}

func TestVariableJobsSamplesWithinTemplate(t *testing.T) {
	tpl := testTemplate(t, 12)
	u, err := NewUniformCount(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewVariableJobs([]*engine.Job{tpl}, []TaskCountDist{u})
	if err != nil {
		t.Fatal(err)
	}
	if src.Classes() != 1 {
		t.Fatalf("classes %d, want 1", src.Classes())
	}
	rng := rand.New(rand.NewSource(8))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		j, err := src.Job(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := len(j.Input)
		if n < 2 || n > 12 {
			t.Fatalf("variant with %d partitions", n)
		}
		seen[n] = true
		if err := j.Validate(); err != nil {
			t.Fatalf("variant invalid: %v", err)
		}
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct sizes in 200 draws", len(seen))
	}
	pmf, err := src.PMF(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmf.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.PMF(1); err == nil {
		t.Fatal("out-of-range PMF class accepted")
	}
}

func TestNewVariableJobsValidation(t *testing.T) {
	tpl := testTemplate(t, 4)
	big, err := NewUniformCount(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVariableJobs([]*engine.Job{tpl}, []TaskCountDist{big}); err == nil {
		t.Fatal("distribution exceeding template accepted")
	}
	if _, err := NewVariableJobs(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	ok := FixedCount(4)
	if _, err := NewVariableJobs([]*engine.Job{tpl, tpl}, []TaskCountDist{ok}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewVariableJobs([]*engine.Job{nil}, []TaskCountDist{ok}); err == nil {
		t.Fatal("nil template accepted")
	}
}
