package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dias/internal/trace"
)

// Process is a stateful arrival process: each call draws the gap to the
// next arrival and its priority class. PoissonMix satisfies it, as does
// mmap.Source (the paper's MMAP[K] arrivals, §4) and the replay/bootstrap
// processes below, so scenarios can swap arrival models freely.
type Process interface {
	Next(rng *rand.Rand) (gap float64, class int)
}

// StreamOf materialises the first n arrivals of any process.
func StreamOf(p Process, rng *rand.Rand, n int) []Arrival {
	out := make([]Arrival, 0, n)
	var t float64
	for i := 0; i < n; i++ {
		gap, k := p.Next(rng)
		t += gap
		out = append(out, Arrival{At: t, Class: k})
	}
	return out
}

// --- Trace replay ---------------------------------------------------------

// Replay re-issues a recorded arrival sequence with its original gaps,
// cycling when exhausted (the wrap gap equals the first recorded arrival
// time, so long replays repeat the trace back to back). Replay ignores the
// RNG: it is fully deterministic.
type Replay struct {
	arrivals []Arrival
	idx      int
	prevAt   float64
}

// NewReplay validates and wraps a recorded arrival sequence. Arrivals must
// be in nondecreasing time order with nonnegative times and classes.
func NewReplay(arrivals []Arrival) (*Replay, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("workload: empty replay sequence")
	}
	prev := 0.0
	for i, a := range arrivals {
		if a.At < prev {
			return nil, fmt.Errorf("workload: replay arrival %d at %g precedes %g", i, a.At, prev)
		}
		if a.Class < 0 {
			return nil, fmt.Errorf("workload: replay arrival %d has class %d", i, a.Class)
		}
		prev = a.At
	}
	cp := make([]Arrival, len(arrivals))
	copy(cp, arrivals)
	return &Replay{arrivals: cp}, nil
}

// Next replays the next recorded arrival, ignoring the RNG.
func (r *Replay) Next(_ *rand.Rand) (gap float64, class int) {
	a := r.arrivals[r.idx]
	if r.idx == 0 {
		// Wrap (or first) gap: from virtual time zero of this cycle.
		gap = a.At
	} else {
		gap = a.At - r.prevAt
	}
	r.prevAt = a.At
	r.idx++
	if r.idx == len(r.arrivals) {
		r.idx = 0
		r.prevAt = 0
	}
	return gap, a.Class
}

// Len returns the number of recorded arrivals in one replay cycle.
func (r *Replay) Len() int { return len(r.arrivals) }

// FromTraceLog extracts the arrival events of a scheduler trace as an
// Arrival sequence, ready for NewReplay — closing the loop from a recorded
// run back into a workload.
func FromTraceLog(l *trace.Log) []Arrival {
	evs := l.Filter(trace.Arrival)
	out := make([]Arrival, 0, len(evs))
	for _, e := range evs {
		out = append(out, Arrival{At: e.At, Class: e.Class})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Rescale multiplies every arrival time by factor: factor > 1 stretches the
// stream (lower load), factor < 1 compresses it (higher load).
func Rescale(arrivals []Arrival, factor float64) ([]Arrival, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: rescale factor %g must be positive", factor)
	}
	out := make([]Arrival, len(arrivals))
	for i, a := range arrivals {
		out[i] = Arrival{At: a.At * factor, Class: a.Class}
	}
	return out, nil
}

// --- Bootstrap ------------------------------------------------------------

// Empirical is a bootstrap arrival process: it resamples (gap, class) pairs
// i.i.d. from a recorded stream, preserving the marginal inter-arrival
// distribution and class mix while discarding temporal correlation. Useful
// to extend a short trace into an arbitrarily long stationary stream.
type Empirical struct {
	gaps    []float64
	classes []int
}

// NewEmpirical builds the bootstrap from a recorded arrival sequence.
func NewEmpirical(arrivals []Arrival) (*Empirical, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("workload: empty empirical sequence")
	}
	e := &Empirical{
		gaps:    make([]float64, len(arrivals)),
		classes: make([]int, len(arrivals)),
	}
	prev := 0.0
	for i, a := range arrivals {
		if a.At < prev {
			return nil, fmt.Errorf("workload: empirical arrival %d at %g precedes %g", i, a.At, prev)
		}
		if a.Class < 0 {
			return nil, fmt.Errorf("workload: empirical arrival %d has class %d", i, a.Class)
		}
		e.gaps[i] = a.At - prev
		e.classes[i] = a.Class
		prev = a.At
	}
	return e, nil
}

// Next resamples one recorded (gap, class) pair.
func (e *Empirical) Next(rng *rand.Rand) (gap float64, class int) {
	i := rng.Intn(len(e.gaps))
	return e.gaps[i], e.classes[i]
}

// MeanGap returns the average recorded inter-arrival gap.
func (e *Empirical) MeanGap() float64 {
	var s float64
	for _, g := range e.gaps {
		s += g
	}
	return s / float64(len(e.gaps))
}

// ClassMix returns the empirical class-frequency vector (indexed by class,
// sized to the largest class seen, summing to 1).
func (e *Empirical) ClassMix() []float64 {
	maxClass := 0
	for _, c := range e.classes {
		if c > maxClass {
			maxClass = c
		}
	}
	mix := make([]float64, maxClass+1)
	for _, c := range e.classes {
		mix[c]++
	}
	for i := range mix {
		mix[i] /= float64(len(e.classes))
	}
	return mix
}
