package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// --- Gamma renewal process ------------------------------------------------

// Gamma is a renewal arrival process with gamma-distributed
// inter-arrival times of configurable coefficient of variation at a
// given mean rate. CV = 1 recovers the exponential gaps of PoissonMix;
// CV > 1 clumps arrivals into bursts separated by long lulls (the
// regime where routing and admission policies actually differentiate);
// CV < 1 is smoother-than-Poisson, approaching a metronome as CV → 0.
//
// Gaps are Gamma(k, θ) with shape k = 1/CV² and scale θ = CV²/λ, so the
// mean gap is kθ = 1/λ for the total per-class rate λ — burstiness
// changes *when* jobs arrive, never *how many*, which is what "equal
// mean rate" comparisons against Poisson require. Classes are marked
// independently per arrival with probability rate_k/total, exactly like
// PoissonMix.
type Gamma struct {
	rates        []float64
	total        float64
	cv           float64
	shape, scale float64
}

// NewGamma builds a gamma renewal process from per-class rates (jobs
// per second; index = class) and an inter-arrival coefficient of
// variation (> 0; 1 = Poisson).
func NewGamma(rates []float64, cv float64) (*Gamma, error) {
	pm, err := NewPoissonMix(rates) // reuse the rate validation
	if err != nil {
		return nil, err
	}
	if cv <= 0 || math.IsNaN(cv) || math.IsInf(cv, 0) {
		return nil, fmt.Errorf("workload: gamma CV %g must be positive and finite", cv)
	}
	return &Gamma{
		rates: pm.rates,
		total: pm.total,
		cv:    cv,
		shape: 1 / (cv * cv),
		scale: cv * cv / pm.total,
	}, nil
}

// TotalRate returns the aggregate mean arrival rate.
func (g *Gamma) TotalRate() float64 { return g.total }

// CV returns the configured inter-arrival coefficient of variation.
func (g *Gamma) CV() float64 { return g.cv }

// Next draws a gamma gap and marks the arrival's class.
func (g *Gamma) Next(rng *rand.Rand) (gap float64, class int) {
	gap = gammaSample(rng, g.shape) * g.scale
	return gap, markClass(rng, g.rates, g.total)
}

// markClass draws an arrival's class with probability rate_k/total, the
// shared marking step of every rate-mix process.
func markClass(rng *rand.Rand, rates []float64, total float64) int {
	u := rng.Float64() * total
	var cum float64
	for k, r := range rates {
		cum += r
		if u < cum {
			return k
		}
	}
	return len(rates) - 1
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang squeeze
// rejection (ACM TOMS 2000), the standard constant-expected-cost
// sampler; shapes below 1 use the boost Gamma(k) = Gamma(k+1)·U^(1/k).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// --- MMPP ----------------------------------------------------------------

// MMPP is a two-state Markov-modulated Poisson process: a background
// Markov chain alternates between a calm state and a burst state, and
// arrivals are Poisson at the state's rate. Unlike Gamma's independent
// gaps, MMPP produces *correlated* burstiness — whole intervals of
// elevated rate — which is what diurnal-scale traffic and incident
// traffic look like, compressed to arbitrary sojourn scales. It is the
// K=1-per-class special case of the paper's MMAP[K] arrivals (§4).
//
// The construction preserves the mean: given per-class rates totalling
// λ, a burst factor b and mean sojourns (s₀, s₁), the stationary state
// probabilities are πᵢ = sᵢ/(s₀+s₁), the burst state arrives at λ₁ = bλ
// and the calm state at λ₀ = λ(1-π₁b)/π₀, so π₀λ₀ + π₁λ₁ = λ exactly.
// That requires π₁b ≤ 1 — you cannot spend more than the whole mean
// rate inside the bursts.
type MMPP struct {
	rates      []float64
	total      float64
	lambda     [2]float64 // per-state arrival rates
	switchRate [2]float64 // 1/mean sojourn, per state
	state      int
}

// NewMMPP builds a mean-preserving two-state MMPP from per-class rates
// (jobs per second; index = class), a burst factor (> 1; the burst
// state's rate is burst × the mean rate), and the mean sojourn seconds
// of the calm and burst states. The process starts in the calm state.
func NewMMPP(rates []float64, burst float64, meanSojournSec [2]float64) (*MMPP, error) {
	pm, err := NewPoissonMix(rates) // reuse the rate validation
	if err != nil {
		return nil, err
	}
	if burst <= 1 || math.IsNaN(burst) || math.IsInf(burst, 0) {
		return nil, fmt.Errorf("workload: mmpp burst factor %g must exceed 1", burst)
	}
	if meanSojournSec[0] <= 0 || meanSojournSec[1] <= 0 {
		return nil, fmt.Errorf("workload: mmpp sojourns %v must be positive", meanSojournSec)
	}
	pi1 := meanSojournSec[1] / (meanSojournSec[0] + meanSojournSec[1])
	if pi1*burst > 1 {
		return nil, fmt.Errorf(
			"workload: mmpp burst %g x stationary burst share %.3g exceeds the mean rate (need burst*share <= 1)",
			burst, pi1)
	}
	pi0 := 1 - pi1
	return &MMPP{
		rates:      pm.rates,
		total:      pm.total,
		lambda:     [2]float64{pm.total * (1 - pi1*burst) / pi0, pm.total * burst},
		switchRate: [2]float64{1 / meanSojournSec[0], 1 / meanSojournSec[1]},
	}, nil
}

// TotalRate returns the stationary mean arrival rate.
func (m *MMPP) TotalRate() float64 { return m.total }

// StateRates returns the calm and burst arrival rates.
func (m *MMPP) StateRates() [2]float64 { return m.lambda }

// Next advances the modulating chain by competing exponentials: in
// state s the next event fires at rate λ_s + switch_s and is an arrival
// with probability λ_s/(λ_s + switch_s), otherwise the chain flips
// state and the wait continues to accumulate into the returned gap.
func (m *MMPP) Next(rng *rand.Rand) (gap float64, class int) {
	for {
		s := m.state
		r := m.lambda[s] + m.switchRate[s]
		gap += rng.ExpFloat64() / r
		if rng.Float64()*r < m.lambda[s] {
			return gap, markClass(rng, m.rates, m.total)
		}
		m.state = 1 - s
	}
}
