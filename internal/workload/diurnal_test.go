package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestDiurnalMixValidation(t *testing.T) {
	bad := []struct {
		rates       []float64
		amp, period float64
	}{
		{nil, 0.5, 100},
		{[]float64{0}, 0.5, 100},
		{[]float64{-1, 1}, 0.5, 100},
		{[]float64{1}, 1.0, 100},
		{[]float64{1}, -0.1, 100},
		{[]float64{1}, 0.5, 0},
	}
	for i, c := range bad {
		if _, err := NewDiurnalMix(c.rates, c.amp, c.period); err == nil {
			t.Fatalf("case %d should have been rejected", i)
		}
	}
}

func TestDiurnalMixMeanRateAndMix(t *testing.T) {
	d, err := NewDiurnalMix([]float64{0.9, 0.1}, 0.8, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 40000
	arrivals := StreamOf(d, rng, n)
	span := arrivals[n-1].At
	// Long-run mean rate converges to total(rates) = 1.0.
	if got := float64(n) / span; math.Abs(got-1) > 0.05 {
		t.Fatalf("empirical mean rate = %g, want ~1", got)
	}
	var high int
	for _, a := range arrivals {
		if a.Class == 1 {
			high++
		}
	}
	if frac := float64(high) / n; math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("high-class fraction = %g, want ~0.1", frac)
	}
	// The swing must actually be there: arrival counts in a peak half-period
	// dominate a trough half-period.
	counts := map[bool]int{}
	for _, a := range arrivals {
		phase := math.Mod(a.At, 500) / 500
		counts[phase < 0.5]++ // first half-period contains the sine peak
	}
	if counts[true] < counts[false]*2 {
		t.Fatalf("no diurnal swing: peak-half %d vs trough-half %d", counts[true], counts[false])
	}
}

func TestDiurnalMixDeterministicPerSeed(t *testing.T) {
	gen := func() []Arrival {
		d, err := NewDiurnalMix([]float64{1, 0.2}, 0.6, 200)
		if err != nil {
			t.Fatal(err)
		}
		return StreamOf(d, rand.New(rand.NewSource(7)), 500)
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
