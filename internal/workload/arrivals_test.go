package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/mmap"
	"dias/internal/simtime"
	"dias/internal/trace"
)

func TestStreamOfMatchesPoissonStream(t *testing.T) {
	pm, err := NewPoissonMix([]float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a := pm.Stream(rand.New(rand.NewSource(5)), 50)
	b := StreamOf(pm, rand.New(rand.NewSource(5)), 50)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMMAPSourceSatisfiesProcess(t *testing.T) {
	m, err := mmap.MarkedPoisson([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	src, err := m.NewSource(rng)
	if err != nil {
		t.Fatal(err)
	}
	var p Process = src // compile-time + runtime check
	arr := StreamOf(p, rng, 4000)
	var high int
	for i, a := range arr {
		if a.Class < 0 || a.Class > 1 {
			t.Fatalf("arrival %d class %d", i, a.Class)
		}
		if a.Class == 1 {
			high++
		}
	}
	frac := float64(high) / float64(len(arr))
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("class-1 fraction %.3f, want ~0.75", frac)
	}
}

func TestReplayPreservesGapsAndCycles(t *testing.T) {
	seq := []Arrival{{At: 1, Class: 0}, {At: 3, Class: 1}, {At: 3.5, Class: 0}}
	r, err := NewReplay(seq)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	wantGaps := []float64{1, 2, 0.5, 1, 2, 0.5} // two full cycles
	wantClass := []int{0, 1, 0, 0, 1, 0}
	for i := range wantGaps {
		gap, class := r.Next(nil)
		if math.Abs(gap-wantGaps[i]) > 1e-12 || class != wantClass[i] {
			t.Fatalf("step %d: gap %g class %d, want %g/%d", i, gap, class, wantGaps[i], wantClass[i])
		}
	}
	// Cumulative times across a cycle boundary keep increasing.
	arr := StreamOf(mustReplay(t, seq), nil, 7)
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("time went backwards at %d: %g < %g", i, arr[i].At, arr[i-1].At)
		}
	}
}

func mustReplay(t *testing.T, seq []Arrival) *Replay {
	t.Helper()
	r, err := NewReplay(seq)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewReplayRejectsBadSequences(t *testing.T) {
	cases := map[string][]Arrival{
		"empty":        nil,
		"unsorted":     {{At: 2}, {At: 1}},
		"negativeTime": {{At: -1}},
		"negClass":     {{At: 1, Class: -2}},
	}
	for name, seq := range cases {
		if _, err := NewReplay(seq); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestFromTraceLogRoundTrip(t *testing.T) {
	var l trace.Log
	l.Record(simtime.Time(2), trace.Arrival, "a", 1, "")
	l.Record(simtime.Time(2.5), trace.Dispatch, "a", 1, "")
	l.Record(simtime.Time(4), trace.Arrival, "b", 0, "")
	l.Record(simtime.Time(9), trace.Complete, "a", 1, "")
	arr := FromTraceLog(&l)
	if len(arr) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arr))
	}
	if arr[0] != (Arrival{At: 2, Class: 1}) || arr[1] != (Arrival{At: 4, Class: 0}) {
		t.Fatalf("arrivals %+v", arr)
	}
	if _, err := NewReplay(arr); err != nil {
		t.Fatalf("trace arrivals should replay: %v", err)
	}
}

func TestRescale(t *testing.T) {
	arr := []Arrival{{At: 1, Class: 0}, {At: 2, Class: 1}}
	out, err := Rescale(arr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At != 0.5 || out[1].At != 1 {
		t.Fatalf("rescaled %+v", out)
	}
	if arr[0].At != 1 {
		t.Fatal("rescale mutated its input")
	}
	if _, err := Rescale(arr, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if _, err := Rescale(arr, -1); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func TestEmpiricalBootstrapPreservesMarginals(t *testing.T) {
	// Build a ground-truth stream, bootstrap from it, compare mean gap and
	// class mix.
	pm, err := NewPoissonMix([]float64{0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	base := pm.Stream(rng, 3000)
	emp, err := NewEmpirical(base)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 1.0 / pm.TotalRate()
	if got := emp.MeanGap(); math.Abs(got-wantMean)/wantMean > 0.1 {
		t.Errorf("mean gap %g, want ~%g", got, wantMean)
	}
	mix := emp.ClassMix()
	if len(mix) != 2 {
		t.Fatalf("mix %v", mix)
	}
	if math.Abs(mix[0]-0.75) > 0.05 {
		t.Errorf("class-0 mix %g, want ~0.75", mix[0])
	}
	// Resampled stream keeps the same mean rate.
	out := StreamOf(emp, rng, 3000)
	gotRate := float64(len(out)) / out[len(out)-1].At
	if math.Abs(gotRate-pm.TotalRate())/pm.TotalRate() > 0.1 {
		t.Errorf("bootstrap rate %g, want ~%g", gotRate, pm.TotalRate())
	}
}

func TestNewEmpiricalRejectsBadInput(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewEmpirical([]Arrival{{At: 3}, {At: 1}}); err == nil {
		t.Fatal("unsorted accepted")
	}
}

// Property: for any valid recorded sequence, replaying it through StreamOf
// reproduces the original absolute arrival times in the first cycle.
func TestReplayFirstCycleIdentityProperty(t *testing.T) {
	f := func(raw []uint16, classesRaw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		arr := make([]Arrival, len(raw))
		var tcum float64
		for i, g := range raw {
			tcum += float64(g) / 100
			class := 0
			if i < len(classesRaw) {
				class = int(classesRaw[i]) % 3
			}
			arr[i] = Arrival{At: tcum, Class: class}
		}
		r, err := NewReplay(arr)
		if err != nil {
			return false
		}
		got := StreamOf(r, nil, len(arr))
		for i := range arr {
			if math.Abs(got[i].At-arr[i].At) > 1e-9*(1+arr[i].At) || got[i].Class != arr[i].Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
