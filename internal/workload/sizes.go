package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dias/internal/engine"
	"dias/internal/model"
)

// The §4 models treat the number of map/reduce tasks of a priority-k job as
// a random variable with PMF pm(t). This file provides task-count samplers
// whose exact PMFs plug into model.TaskCountPMF, size distributions for the
// byte-volume knob, and job sources that build per-arrival job variants.

// --- Task-count samplers ---------------------------------------------------

// TaskCountDist draws integer task counts and exposes its exact PMF, tying
// the generated workload to the model's pm(t)/pr(u) inputs.
type TaskCountDist interface {
	// Sample draws one task count (>= 1).
	Sample(rng *rand.Rand) int
	// PMF returns the exact distribution (entry i = P(i+1 tasks)).
	PMF() model.TaskCountPMF
	// Max returns the largest possible count (N^k in Table 1).
	Max() int
}

// FixedCount always yields n tasks.
type FixedCount int

// Sample returns n.
func (f FixedCount) Sample(_ *rand.Rand) int { return int(f) }

// PMF is the degenerate distribution at n.
func (f FixedCount) PMF() model.TaskCountPMF { return model.FixedTasks(int(f)) }

// Max returns n.
func (f FixedCount) Max() int { return int(f) }

// UniformCount draws uniformly from {Lo, ..., Hi}.
type UniformCount struct {
	Lo, Hi int
}

// NewUniformCount validates the bounds.
func NewUniformCount(lo, hi int) (UniformCount, error) {
	if lo < 1 || hi < lo {
		return UniformCount{}, fmt.Errorf("workload: uniform count bounds [%d,%d]", lo, hi)
	}
	return UniformCount{Lo: lo, Hi: hi}, nil
}

// Sample draws one count.
func (u UniformCount) Sample(rng *rand.Rand) int {
	return u.Lo + rng.Intn(u.Hi-u.Lo+1)
}

// PMF spreads mass evenly over [Lo, Hi].
func (u UniformCount) PMF() model.TaskCountPMF {
	p := make(model.TaskCountPMF, u.Hi)
	w := 1 / float64(u.Hi-u.Lo+1)
	for t := u.Lo; t <= u.Hi; t++ {
		p[t-1] = w
	}
	return p
}

// Max returns Hi.
func (u UniformCount) Max() int { return u.Hi }

// EmpiricalCount resamples from observed task counts (e.g. profiled from a
// production trace), with the exact empirical PMF.
type EmpiricalCount struct {
	counts []int
	pmf    model.TaskCountPMF
}

// NewEmpiricalCount builds the sampler from observations (each >= 1).
func NewEmpiricalCount(observed []int) (*EmpiricalCount, error) {
	if len(observed) == 0 {
		return nil, errors.New("workload: no observed task counts")
	}
	maxN := 0
	for i, c := range observed {
		if c < 1 {
			return nil, fmt.Errorf("workload: observation %d has %d tasks", i, c)
		}
		if c > maxN {
			maxN = c
		}
	}
	pmf := make(model.TaskCountPMF, maxN)
	for _, c := range observed {
		pmf[c-1] += 1 / float64(len(observed))
	}
	cp := make([]int, len(observed))
	copy(cp, observed)
	return &EmpiricalCount{counts: cp, pmf: pmf}, nil
}

// Sample resamples one observation.
func (e *EmpiricalCount) Sample(rng *rand.Rand) int {
	return e.counts[rng.Intn(len(e.counts))]
}

// PMF returns the empirical distribution.
func (e *EmpiricalCount) PMF() model.TaskCountPMF {
	out := make(model.TaskCountPMF, len(e.pmf))
	copy(out, e.pmf)
	return out
}

// Max returns the largest observed count.
func (e *EmpiricalCount) Max() int { return len(e.pmf) }

// --- Size distributions -----------------------------------------------------

// SizeDist draws positive job sizes (bytes, or any positive scalar knob).
type SizeDist interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
}

// FixedSize always yields the same size.
type FixedSize float64

// Sample returns the fixed size.
func (f FixedSize) Sample(_ *rand.Rand) float64 { return float64(f) }

// Mean returns the fixed size.
func (f FixedSize) Mean() float64 { return float64(f) }

// UniformSize draws uniformly from [Lo, Hi].
type UniformSize struct {
	Lo, Hi float64
}

// NewUniformSize validates the bounds.
func NewUniformSize(lo, hi float64) (UniformSize, error) {
	if lo <= 0 || hi < lo {
		return UniformSize{}, fmt.Errorf("workload: uniform size bounds [%g,%g]", lo, hi)
	}
	return UniformSize{Lo: lo, Hi: hi}, nil
}

// Sample draws one size.
func (u UniformSize) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean returns (Lo+Hi)/2.
func (u UniformSize) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// LognormalSize draws log-normally distributed sizes — the heavy-tailed
// shape production job-size traces exhibit. Mu and Sigma parameterize the
// underlying normal (of the natural log).
type LognormalSize struct {
	Mu, Sigma float64
}

// LognormalFromMeanCV builds the lognormal matching a target mean and
// coefficient of variation (std/mean), the two numbers trace studies
// usually report.
func LognormalFromMeanCV(mean, cv float64) (LognormalSize, error) {
	if mean <= 0 || cv <= 0 {
		return LognormalSize{}, fmt.Errorf("workload: lognormal mean %g cv %g", mean, cv)
	}
	sigma2 := math.Log(1 + cv*cv)
	return LognormalSize{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}, nil
}

// Sample draws one size.
func (l LognormalSize) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LognormalSize) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// EmpiricalSize resamples from observed sizes.
type EmpiricalSize struct {
	samples []float64
	mean    float64
}

// NewEmpiricalSize builds the sampler from positive observations.
func NewEmpiricalSize(observed []float64) (*EmpiricalSize, error) {
	if len(observed) == 0 {
		return nil, errors.New("workload: no observed sizes")
	}
	var sum float64
	for i, s := range observed {
		if s <= 0 {
			return nil, fmt.Errorf("workload: observation %d has size %g", i, s)
		}
		sum += s
	}
	cp := make([]float64, len(observed))
	copy(cp, observed)
	return &EmpiricalSize{samples: cp, mean: sum / float64(len(observed))}, nil
}

// Sample resamples one observation.
func (e *EmpiricalSize) Sample(rng *rand.Rand) float64 {
	return e.samples[rng.Intn(len(e.samples))]
}

// Mean returns the sample mean.
func (e *EmpiricalSize) Mean() float64 { return e.mean }

// --- Job sources ------------------------------------------------------------

// SubJob clones a job truncated to the first tasks input partitions, with
// SizeBytes scaled proportionally — the mechanism for realising a sampled
// task count t from a full-size template (stage 0 then spawns t tasks).
func SubJob(base *engine.Job, tasks int) (*engine.Job, error) {
	if base == nil {
		return nil, errors.New("workload: nil base job")
	}
	if tasks < 1 || tasks > len(base.Input) {
		return nil, fmt.Errorf("workload: %d tasks out of [1,%d]", tasks, len(base.Input))
	}
	clone := *base
	clone.Input = base.Input[:tasks]
	clone.SizeBytes = int64(float64(base.SizeBytes) * float64(tasks) / float64(len(base.Input)))
	stages := make([]engine.Stage, len(base.Stages))
	copy(stages, base.Stages)
	clone.Stages = stages
	return &clone, nil
}

// JobSource produces the job instance for each arrival of a class. It lets
// scenarios move beyond one fixed template per class: sizes and task counts
// can vary per arrival, matching the random nkm of §4.
type JobSource interface {
	Job(rng *rand.Rand, class int) (*engine.Job, error)
	// Classes returns the number of classes the source serves.
	Classes() int
}

// FixedJobs serves one immutable template per class (the Figure 7-11
// setting).
type FixedJobs []*engine.Job

// Job returns the class template.
func (f FixedJobs) Job(_ *rand.Rand, class int) (*engine.Job, error) {
	if class < 0 || class >= len(f) {
		return nil, fmt.Errorf("workload: class %d out of range %d", class, len(f))
	}
	if f[class] == nil {
		return nil, fmt.Errorf("workload: class %d has no template", class)
	}
	return f[class], nil
}

// Classes returns the template count.
func (f FixedJobs) Classes() int { return len(f) }

// VariableJobs samples a task count per arrival and truncates the class
// template accordingly, realising the paper's variable job sizes.
type VariableJobs struct {
	templates []*engine.Job
	counts    []TaskCountDist
}

// NewVariableJobs pairs per-class templates with task-count distributions.
// Each distribution's Max must not exceed its template's partition count.
func NewVariableJobs(templates []*engine.Job, counts []TaskCountDist) (*VariableJobs, error) {
	if len(templates) == 0 || len(templates) != len(counts) {
		return nil, fmt.Errorf("workload: %d templates vs %d count distributions", len(templates), len(counts))
	}
	for k, tpl := range templates {
		if tpl == nil || counts[k] == nil {
			return nil, fmt.Errorf("workload: class %d missing template or distribution", k)
		}
		if counts[k].Max() > len(tpl.Input) {
			return nil, fmt.Errorf("workload: class %d can draw %d tasks but template has %d partitions",
				k, counts[k].Max(), len(tpl.Input))
		}
	}
	return &VariableJobs{templates: templates, counts: counts}, nil
}

// Job samples a variant for one arrival.
func (v *VariableJobs) Job(rng *rand.Rand, class int) (*engine.Job, error) {
	if class < 0 || class >= len(v.templates) {
		return nil, fmt.Errorf("workload: class %d out of range %d", class, len(v.templates))
	}
	return SubJob(v.templates[class], v.counts[class].Sample(rng))
}

// Classes returns the number of classes.
func (v *VariableJobs) Classes() int { return len(v.templates) }

// PMF exposes the class's exact task-count distribution for the model.
func (v *VariableJobs) PMF(class int) (model.TaskCountPMF, error) {
	if class < 0 || class >= len(v.counts) {
		return nil, fmt.Errorf("workload: class %d out of range %d", class, len(v.counts))
	}
	return v.counts[class].PMF(), nil
}
