package workload

import (
	"math"
	"math/rand"
	"testing"
)

// gapStats draws n gaps from a process and returns the empirical mean
// gap, the gap CV, and the class-0 fraction.
func gapStats(t *testing.T, p Process, seed int64, n int) (mean, cv, frac0 float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	var class0 int
	for i := 0; i < n; i++ {
		gap, k := p.Next(rng)
		if gap < 0 || math.IsNaN(gap) || math.IsInf(gap, 0) {
			t.Fatalf("draw %d: bad gap %g", i, gap)
		}
		sum += gap
		sumSq += gap * gap
		if k == 0 {
			class0++
		}
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean, float64(class0) / float64(n)
}

// Gamma renewal gaps must reproduce the configured mean rate and CV —
// the whole point of the process is "same load, more clumping". Checked
// across seeds so a lucky stream cannot mask a broken sampler.
func TestGammaMeanRateAndCV(t *testing.T) {
	for _, cv := range []float64{0.5, 1.0, 3.5} {
		g, err := NewGamma([]float64{9, 1}, cv)
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalRate() != 10 || g.CV() != cv {
			t.Fatalf("cv %g: TotalRate=%g CV=%g", cv, g.TotalRate(), g.CV())
		}
		for _, seed := range []int64{1, 2, 3} {
			mean, gotCV, frac0 := gapStats(t, g, seed, 200000)
			if math.Abs(mean-0.1) > 0.003*cv+0.003 {
				t.Errorf("cv %g seed %d: mean gap %g, want 0.1", cv, seed, mean)
			}
			if math.Abs(gotCV-cv)/cv > 0.10 {
				t.Errorf("cv %g seed %d: empirical CV %g", cv, seed, gotCV)
			}
			if math.Abs(frac0-0.9) > 0.01 {
				t.Errorf("cv %g seed %d: class-0 fraction %g, want 0.9", cv, seed, frac0)
			}
		}
	}
}

// CV=1 Gamma is exponential: it must match PoissonMix's distribution,
// not just its moments (Kolmogorov-style quantile spot checks).
func TestGammaCVOneIsExponential(t *testing.T) {
	g, err := NewGamma([]float64{10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var below float64 // P(gap <= median) for Exp(10): median = ln2/10
	median := math.Ln2 / 10
	for i := 0; i < n; i++ {
		gap, _ := g.Next(rng)
		if gap <= median {
			below++
		}
	}
	if frac := below / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("P(gap <= exponential median) = %g, want 0.5", frac)
	}
}

// The MMPP must preserve the configured mean rate (the stationary
// average of its calm and burst rates) while producing CV > 1 —
// correlated episodes, not just heavy-tailed gaps. The empirical mean
// converges at the burst-cycle scale, not the gap scale, so the test
// uses 100x shorter sojourns than the scale driver's {300, 60} — the
// stationary shares and per-state rates are identical, but 500k draws
// span ~14000 cycles instead of ~140.
func TestMMPPMeanRateAndBurstiness(t *testing.T) {
	m, err := NewMMPP([]float64{9, 1}, 4, [2]float64{3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalRate() != 10 {
		t.Fatalf("TotalRate = %g", m.TotalRate())
	}
	sr := m.StateRates()
	lo, hi := sr[0], sr[1]
	if lo >= 10 || hi != 40 {
		t.Fatalf("state rates %g/%g: calm must be below the mean, burst 4x it", lo, hi)
	}
	// Stationary check: pi1 = 0.6/3.6 = 1/6 at rate 40, pi0 = 5/6 at lo;
	// the mixture must recover the mean.
	if mix := (5*lo + 40) / 6; math.Abs(mix-10) > 1e-9 {
		t.Fatalf("stationary mixture rate %g, want 10", mix)
	}
	for _, seed := range []int64{1, 2, 3} {
		mean, cv, frac0 := gapStats(t, m, seed, 500000)
		if math.Abs(mean-0.1) > 0.005 {
			t.Errorf("seed %d: mean gap %g, want 0.1", seed, mean)
		}
		if cv <= 1.1 {
			t.Errorf("seed %d: gap CV %g, want > 1 (bursty)", seed, cv)
		}
		if math.Abs(frac0-0.9) > 0.01 {
			t.Errorf("seed %d: class-0 fraction %g, want 0.9", seed, frac0)
		}
	}
}

func TestGammaValidation(t *testing.T) {
	for i, tc := range []struct {
		rates []float64
		cv    float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{-1, 2}, 1},
		{[]float64{1}, 0},
		{[]float64{1}, -2},
		{[]float64{1}, math.NaN()},
		{[]float64{1}, math.Inf(1)},
	} {
		if _, err := NewGamma(tc.rates, tc.cv); err == nil {
			t.Errorf("case %d: NewGamma(%v, %g) accepted", i, tc.rates, tc.cv)
		}
	}
}

func TestMMPPValidation(t *testing.T) {
	for i, tc := range []struct {
		rates    []float64
		burst    float64
		sojourns [2]float64
	}{
		{nil, 4, [2]float64{300, 60}},
		{[]float64{-1}, 4, [2]float64{300, 60}},
		{[]float64{1}, 1, [2]float64{300, 60}},   // burst must exceed 1
		{[]float64{1}, 0.5, [2]float64{300, 60}}, // burst must exceed 1
		{[]float64{1}, 4, [2]float64{0, 60}},
		{[]float64{1}, 4, [2]float64{300, -1}},
		// pi1*burst > 1: the calm rate would need to be negative.
		{[]float64{1}, 4, [2]float64{60, 300}},
	} {
		if _, err := NewMMPP(tc.rates, tc.burst, tc.sojourns); err == nil {
			t.Errorf("case %d: NewMMPP(%v, %g, %v) accepted", i, tc.rates, tc.burst, tc.sojourns)
		}
	}
}

// Fixed seed, fixed stream: the bursty processes feed deterministic
// simulations, so their draws must be reproducible.
func TestBurstyDeterministic(t *testing.T) {
	draw := func(p Process, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 50)
		for i := range out {
			out[i], _ = p.Next(rng)
		}
		return out
	}
	g1, _ := NewGamma([]float64{9, 1}, 3.5)
	g2, _ := NewGamma([]float64{9, 1}, 3.5)
	a, b := draw(g1, 42), draw(g2, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gamma draw %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	m1, _ := NewMMPP([]float64{9, 1}, 4, [2]float64{300, 60})
	m2, _ := NewMMPP([]float64{9, 1}, 4, [2]float64{300, 60})
	a, b = draw(m1, 42), draw(m2, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mmpp draw %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}
