// Package workload synthesises the paper's inputs and arrival processes
// (§5.1): per-topic text corpora standing in for the StackExchange dumps,
// scale-free graphs standing in for the Google web graph, and the job
// streams that drive every experiment.
//
// # Arrival processes
//
// Every arrival process implements Process: Next(rng) returns the gap to
// the next arrival and its priority class. All processes are calibrated
// in per-class mean rates, so swapping one for another at the same rates
// changes only burstiness — the "equal mean load, different clumping"
// comparisons the routing and admission experiments depend on. The
// catalogue, from smoothest to most structured:
//
//   - PoissonMix: exponential gaps at the total rate, classes marked by
//     rate share (gap CV = 1, memoryless — the baseline).
//   - Gamma: renewal process with Gamma(1/CV², CV²/λ) gaps at a
//     configurable CV. Independent gaps, heavy-tailed clumping.
//   - MMPP: 2-state Markov-modulated Poisson process — calm and burst
//     episodes with mean-preserving rates; correlated burstiness.
//   - DiurnalMix: sinusoidally rate-modulated arrivals (day/night
//     cycles).
//   - Replay / Empirical: materialized trace replay (exact, cycling).
//   - EmpiricalStream: streaming replay of a trace.StreamReader file —
//     one record in memory at a time, for million-job runs.
//
// docs/WORKLOADS.md derives the math and shows when to reach for which.
//
// Feed-forward injection (Inject) turns any Process into on-the-fly job
// submission on the simulation clock: only the next arrival is
// scheduled, so a million-job run holds O(1) arrival state instead of a
// materialized arrival slice.
//
// Everything is driven by caller-owned seeded RNGs, keeping experiments
// deterministic.
package workload
