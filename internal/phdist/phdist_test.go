package phdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/matrix"
)

func mustMean(t *testing.T, p *PH) float64 {
	t.Helper()
	m, err := p.Mean()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustSCV(t *testing.T, p *PH) float64 {
	t.Helper()
	s, err := p.SCV()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExponentialMoments(t *testing.T) {
	p, err := Exponential(2)
	if err != nil {
		t.Fatal(err)
	}
	if m := mustMean(t, p); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("mean = %g, want 0.5", m)
	}
	m2, err := p.Moment(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2-0.5) > 1e-12 { // E[X²] = 2/λ² = 0.5
		t.Fatalf("second moment = %g, want 0.5", m2)
	}
	if s := mustSCV(t, p); math.Abs(s-1) > 1e-12 {
		t.Fatalf("scv = %g, want 1", s)
	}
}

func TestErlangMoments(t *testing.T) {
	p, err := Erlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m := mustMean(t, p); math.Abs(m-2) > 1e-12 {
		t.Fatalf("mean = %g, want 2", m)
	}
	if s := mustSCV(t, p); math.Abs(s-0.25) > 1e-12 {
		t.Fatalf("scv = %g, want 0.25", s)
	}
}

func TestExponentialCDF(t *testing.T) {
	p, err := Exponential(1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-1.5*x)
		if got := p.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	if got := p.CDF(-1); got != 0 {
		t.Fatalf("CDF(-1) = %g", got)
	}
}

func TestErlangCDF(t *testing.T) {
	// Erlang(2, λ): F(t) = 1 - e^{-λt}(1+λt).
	p, err := Erlang(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 1, 2} {
		want := 1 - math.Exp(-3*x)*(1+3*x)
		if got := p.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestHyperExponential(t *testing.T) {
	p, err := HyperExponential([]float64{0.4, 0.6}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4/1 + 0.6/5
	if m := mustMean(t, p); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", m, want)
	}
	if s := mustSCV(t, p); s <= 1 {
		t.Fatalf("scv = %g, want > 1", s)
	}
	if _, err := HyperExponential([]float64{0.5, 0.4}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for weights not summing to 1")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		alpha []float64
		a     *matrix.Matrix
	}{
		{"dim mismatch", []float64{1}, matrix.Zeros(2, 2)},
		{"negative alpha", []float64{-0.5, 1.5}, matrix.New(2, 2, []float64{-1, 0, 0, -1})},
		{"alpha mass >1", []float64{0.9, 0.9}, matrix.New(2, 2, []float64{-1, 0, 0, -1})},
		{"positive diagonal", []float64{1}, matrix.New(1, 1, []float64{2})},
		{"negative off-diagonal", []float64{1, 0}, matrix.New(2, 2, []float64{-1, -1, 0, -1})},
		{"positive row sum", []float64{1, 0}, matrix.New(2, 2, []float64{-1, 3, 0, -1})},
	}
	for _, c := range cases {
		if _, err := New(c.alpha, c.a); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestAtomAtZero(t *testing.T) {
	// alpha mass 0.7: P(X=0) = 0.3.
	p, err := New([]float64{0.7}, matrix.New(1, 1, []float64{-1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CDF(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("CDF(0) = %g, want 0.3", got)
	}
	if m := mustMean(t, p); math.Abs(m-0.7) > 1e-12 {
		t.Fatalf("mean = %g, want 0.7", m)
	}
}

func TestConvolve(t *testing.T) {
	x, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	z := Convolve(x, y) // Erlang(2,1)
	if m := mustMean(t, z); math.Abs(m-2) > 1e-12 {
		t.Fatalf("mean = %g, want 2", m)
	}
	if s := mustSCV(t, z); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("scv = %g, want 0.5", s)
	}
	e2, err := Erlang(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.3, 1, 3} {
		if got, want := z.CDF(tt), e2.CDF(tt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestConvolveWithAtom(t *testing.T) {
	// X has atom 0.5 at zero: E[X+Y] = 0.5·E[exp(1)] + E[exp(2)].
	x, err := New([]float64{0.5}, matrix.New(1, 1, []float64{-1}))
	if err != nil {
		t.Fatal(err)
	}
	y, err := Exponential(2)
	if err != nil {
		t.Fatal(err)
	}
	z := Convolve(x, y)
	if m := mustMean(t, z); math.Abs(m-1.0) > 1e-12 {
		t.Fatalf("mean = %g, want 1.0", m)
	}
}

func TestConvolveAll(t *testing.T) {
	e, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ConvolveAll(e, e, e)
	if err != nil {
		t.Fatal(err)
	}
	if m := mustMean(t, z); math.Abs(m-3) > 1e-12 {
		t.Fatalf("mean = %g, want 3", m)
	}
	if _, err := ConvolveAll(); err == nil {
		t.Fatal("expected error for empty ConvolveAll")
	}
}

func TestMixture(t *testing.T) {
	fast, err := Exponential(10)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := Mixture([]float64{0.3, 0.7}, []*PH{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3*0.1 + 0.7*1.0
	if m := mustMean(t, mix); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", m, want)
	}
	if _, err := Mixture([]float64{0.5}, []*PH{fast, slow}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestScaleTime(t *testing.T) {
	p, err := Erlang(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.ScaleTime(4)
	if err != nil {
		t.Fatal(err)
	}
	if m := mustMean(t, q); math.Abs(m-6) > 1e-12 { // 1.5 * 4
		t.Fatalf("mean = %g, want 6", m)
	}
	// SCV is scale-invariant.
	if s0, s1 := mustSCV(t, p), mustSCV(t, q); math.Abs(s0-s1) > 1e-12 {
		t.Fatalf("scv changed under scaling: %g vs %g", s0, s1)
	}
	if _, err := p.ScaleTime(0); err == nil {
		t.Fatal("expected error for nonpositive scale")
	}
}

func TestQuantile(t *testing.T) {
	p, err := Exponential(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		want := -math.Log(1-q) / 2
		got, err := p.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	if _, err := p.Quantile(1); err == nil {
		t.Fatal("expected error for q=1")
	}
}

func TestSampleMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := Erlang(3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	got := sum / n
	want := mustMean(t, p)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("sample mean %g, analytic %g", got, want)
	}
}

func TestSampleHyperExp(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := HyperExponential([]float64{0.2, 0.8}, []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	got := sum / n
	want := mustMean(t, p)
	if math.Abs(got-want)/want > 0.04 {
		t.Fatalf("sample mean %g, analytic %g", got, want)
	}
}

func TestFitMeanSCV(t *testing.T) {
	cases := []struct{ mean, scv float64 }{
		{1, 1}, {2, 0.5}, {5, 0.33}, {3, 0.2}, {1, 2}, {10, 8}, {0.5, 1.0000001},
	}
	for _, c := range cases {
		p, err := FitMeanSCV(c.mean, c.scv)
		if err != nil {
			t.Fatalf("FitMeanSCV(%g,%g): %v", c.mean, c.scv, err)
		}
		if m := mustMean(t, p); math.Abs(m-c.mean)/c.mean > 1e-6 {
			t.Fatalf("FitMeanSCV(%g,%g) mean = %g", c.mean, c.scv, m)
		}
		gotSCV := mustSCV(t, p)
		tol := 1e-6
		if c.scv < 0.02 { // near-deterministic branch is capped at order 64
			tol = 0.02
		}
		if math.Abs(gotSCV-c.scv) > tol && math.Abs(gotSCV-c.scv)/c.scv > tol {
			t.Fatalf("FitMeanSCV(%g,%g) scv = %g", c.mean, c.scv, gotSCV)
		}
	}
	if _, err := FitMeanSCV(0, 1); err == nil {
		t.Fatal("expected error for zero mean")
	}
}

func TestFitNearDeterministic(t *testing.T) {
	p, err := FitMeanSCV(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := mustMean(t, p); math.Abs(m-2) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
	if s := mustSCV(t, p); s > 0.02 {
		t.Fatalf("scv = %g, want near 0", s)
	}
}

func TestAccessorsCopy(t *testing.T) {
	p, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Alpha()
	a[0] = 99
	if p.Alpha()[0] != 1 {
		t.Fatal("Alpha aliases internal state")
	}
	g := p.Generator()
	g.Set(0, 0, 99)
	if p.Generator().At(0, 0) != -1 {
		t.Fatal("Generator aliases internal state")
	}
}

// Property: convolution means add; mixture means are convex combinations.
func TestPropertyClosureMeans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := 0.1 + rng.Float64()*5
		r2 := 0.1 + rng.Float64()*5
		k := 1 + rng.Intn(4)
		x, err := Erlang(k, r1)
		if err != nil {
			return false
		}
		y, err := Exponential(r2)
		if err != nil {
			return false
		}
		mx, _ := x.Mean()
		my, _ := y.Mean()
		conv := Convolve(x, y)
		mc, err := conv.Mean()
		if err != nil || math.Abs(mc-(mx+my)) > 1e-8 {
			return false
		}
		w := rng.Float64()
		mix, err := Mixture([]float64{w, 1 - w}, []*PH{x, y})
		if err != nil {
			return false
		}
		mm, err := mix.Mean()
		return err == nil && math.Abs(mm-(w*mx+(1-w)*my)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone nondecreasing and bounded in [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := 0.5 + rng.Float64()*4
		scv := 0.2 + rng.Float64()*3
		p, err := FitMeanSCV(mean, scv)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := 0.0; x <= mean*5; x += mean / 4 {
			c := p.CDF(x)
			if c < prev-1e-9 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCDFErlang8(b *testing.B) {
	p, err := Erlang(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CDF(3.7)
	}
}

func BenchmarkSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p, err := Erlang(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(rng)
	}
}
