// Package phdist implements continuous phase-type (PH) distributions: the
// building block of the paper's job processing-time models (§4).
//
// A PH distribution is the time to absorption of a Markov chain with
// transient generator A (an n×n sub-generator) started from the row vector
// α. The class is closed under convolution and mixture, which the paper
// exploits to assemble job processing times from setup, map-wave, shuffle
// and reduce-wave components.
package phdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dias/internal/matrix"
)

// PH is a phase-type distribution with initial vector Alpha and transient
// sub-generator A. Mass may be placed directly in the absorbing state by
// having Alpha sum to less than one (an atom at zero).
type PH struct {
	alpha []float64
	a     *matrix.Matrix
}

// New validates and builds a PH distribution. Alpha must be a
// sub-probability vector of the same order as the square sub-generator a:
// off-diagonal entries nonnegative, diagonal negative-or-zero, row sums <= 0
// with at least one strictly negative exit overall.
func New(alpha []float64, a *matrix.Matrix) (*PH, error) {
	n := len(alpha)
	if a.Rows() != n || a.Cols() != n {
		return nil, fmt.Errorf("phdist: alpha has %d entries but A is %dx%d", n, a.Rows(), a.Cols())
	}
	if n == 0 {
		return nil, errors.New("phdist: empty representation")
	}
	var mass float64
	for i, v := range alpha {
		if v < -1e-12 {
			return nil, fmt.Errorf("phdist: alpha[%d] = %g negative", i, v)
		}
		mass += v
	}
	if mass > 1+1e-9 {
		return nil, fmt.Errorf("phdist: alpha mass %g exceeds 1", mass)
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if i == j {
				if v > 1e-12 {
					return nil, fmt.Errorf("phdist: diagonal A[%d][%d] = %g positive", i, j, v)
				}
			} else if v < -1e-12 {
				return nil, fmt.Errorf("phdist: off-diagonal A[%d][%d] = %g negative", i, j, v)
			}
			row += v
		}
		if row > 1e-9 {
			return nil, fmt.Errorf("phdist: row %d of A sums to %g > 0", i, row)
		}
	}
	cp := make([]float64, n)
	copy(cp, alpha)
	return &PH{alpha: cp, a: a.Clone()}, nil
}

// MustNew is New for statically known-valid representations; it panics on
// error and is intended for package-internal constructors and tests.
func MustNew(alpha []float64, a *matrix.Matrix) *PH {
	ph, err := New(alpha, a)
	if err != nil {
		panic(err)
	}
	return ph
}

// Order returns the number of transient phases.
func (p *PH) Order() int { return len(p.alpha) }

// Alpha returns a copy of the initial probability vector.
func (p *PH) Alpha() []float64 {
	out := make([]float64, len(p.alpha))
	copy(out, p.alpha)
	return out
}

// Generator returns a copy of the transient sub-generator A.
func (p *PH) Generator() *matrix.Matrix { return p.a.Clone() }

// ExitVector returns a = -A·1, the absorption rates per phase.
func (p *PH) ExitVector() []float64 {
	n := p.Order()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			row += p.a.At(i, j)
		}
		out[i] = -row
	}
	return out
}

// Moment returns the k-th raw moment E[X^k] = k!·α·(-A)⁻ᵏ·1.
func (p *PH) Moment(k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("phdist: Moment(%d)", k)
	}
	negA := matrix.Scale(-1, p.a)
	inv, err := matrix.Inverse(negA)
	if err != nil {
		return 0, fmt.Errorf("moment of defective generator: %w", err)
	}
	v := p.Alpha()
	fact := 1.0
	for i := 1; i <= k; i++ {
		v = matrix.VecMul(v, inv)
		fact *= float64(i)
	}
	return fact * sum(v), nil
}

// Mean returns E[X].
func (p *PH) Mean() (float64, error) { return p.Moment(1) }

// SCV returns the squared coefficient of variation Var[X]/E[X]².
func (p *PH) SCV() (float64, error) {
	m1, err := p.Moment(1)
	if err != nil {
		return 0, err
	}
	m2, err := p.Moment(2)
	if err != nil {
		return 0, err
	}
	if m1 == 0 {
		return 0, errors.New("phdist: SCV of zero-mean distribution")
	}
	return m2/(m1*m1) - 1, nil
}

// CDF returns P(X <= t), computed by uniformization of exp(At): with
// θ >= max|A_ii| and P = I + A/θ, exp(At)·1 = Σ_k Poisson(θt,k)·Pᵏ·1.
func (p *PH) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	atom := 1 - sum(p.alpha)
	if t == 0 {
		return clampProb(atom)
	}
	n := p.Order()
	theta := 0.0
	for i := 0; i < n; i++ {
		if d := -p.a.At(i, i); d > theta {
			theta = d
		}
	}
	if theta == 0 {
		return clampProb(atom)
	}
	// P = I + A/θ is a sub-stochastic matrix.
	pm := matrix.Add(matrix.Identity(n), matrix.Scale(1/theta, p.a))
	v := p.Alpha() // row vector, updated as v·Pᵏ
	lambda := theta * t
	// Poisson weights computed iteratively; survival = Σ_k w_k · (v_k·1).
	logW := -lambda // log weight at k=0
	var survival float64
	const tol = 1e-12
	maxK := int(lambda + 10*math.Sqrt(lambda+1) + 50)
	var cumW float64
	for k := 0; ; k++ {
		w := math.Exp(logW)
		survival += w * sum(v)
		cumW += w
		if 1-cumW < tol || k > maxK {
			break
		}
		v = matrix.VecMul(v, pm)
		logW += math.Log(lambda) - math.Log(float64(k+1))
	}
	return clampProb(1 - survival)
}

// Quantile returns the smallest t with CDF(t) >= q, found by bisection.
func (p *PH) Quantile(q float64) (float64, error) {
	if q < 0 || q >= 1 {
		return 0, fmt.Errorf("phdist: Quantile(%g) out of [0,1)", q)
	}
	if q <= p.CDF(0) {
		return 0, nil
	}
	mean, err := p.Mean()
	if err != nil {
		return 0, err
	}
	hi := mean
	for p.CDF(hi) < q {
		hi *= 2
		if hi > mean*1e9 {
			return 0, fmt.Errorf("phdist: quantile %g unreachable", q)
		}
	}
	lo := 0.0
	for i := 0; i < 80 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if p.CDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// Sample draws one value by simulating the absorbing chain.
func (p *PH) Sample(rng *rand.Rand) float64 {
	n := p.Order()
	// Choose initial phase; mass 1-Σα is an atom at zero.
	u := rng.Float64()
	state := -1
	var cum float64
	for i := 0; i < n; i++ {
		cum += p.alpha[i]
		if u < cum {
			state = i
			break
		}
	}
	if state < 0 {
		return 0
	}
	exit := p.ExitVector()
	var t float64
	for {
		rate := -p.a.At(state, state)
		if rate <= 0 {
			return t // defensive: absorbing-like phase
		}
		t += rng.ExpFloat64() / rate
		// Choose next phase or absorption proportionally to rates.
		u := rng.Float64() * rate
		cum := exit[state]
		if u < cum {
			return t
		}
		next := -1
		for j := 0; j < n; j++ {
			if j == state {
				continue
			}
			cum += p.a.At(state, j)
			if u < cum {
				next = j
				break
			}
		}
		if next < 0 {
			return t
		}
		state = next
	}
}

// Exponential returns an exponential distribution with the given rate.
func Exponential(rate float64) (*PH, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("phdist: Exponential rate %g", rate)
	}
	return New([]float64{1}, matrix.New(1, 1, []float64{-rate}))
}

// Erlang returns the sum of k exponentials of the given rate.
func Erlang(k int, rate float64) (*PH, error) {
	if k < 1 || rate <= 0 {
		return nil, fmt.Errorf("phdist: Erlang(%d, %g)", k, rate)
	}
	a := matrix.Zeros(k, k)
	for i := 0; i < k; i++ {
		a.Set(i, i, -rate)
		if i+1 < k {
			a.Set(i, i+1, rate)
		}
	}
	alpha := make([]float64, k)
	alpha[0] = 1
	return New(alpha, a)
}

// HyperExponential returns a probabilistic mixture of exponentials.
func HyperExponential(probs, rates []float64) (*PH, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("phdist: HyperExponential %d probs, %d rates", len(probs), len(rates))
	}
	n := len(probs)
	a := matrix.Zeros(n, n)
	var mass float64
	for i := 0; i < n; i++ {
		if rates[i] <= 0 || probs[i] < 0 {
			return nil, fmt.Errorf("phdist: HyperExponential branch %d (p=%g, rate=%g)", i, probs[i], rates[i])
		}
		a.Set(i, i, -rates[i])
		mass += probs[i]
	}
	if math.Abs(mass-1) > 1e-9 {
		return nil, fmt.Errorf("phdist: HyperExponential probabilities sum to %g", mass)
	}
	return New(probs, a)
}

// Convolve returns the distribution of X+Y for independent PH X and Y:
// the chain runs X to absorption, then starts Y.
func Convolve(x, y *PH) *PH {
	nx, ny := x.Order(), y.Order()
	n := nx + ny
	a := matrix.Zeros(n, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			a.Set(i, j, x.a.At(i, j))
		}
	}
	exit := x.ExitVector()
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			a.Set(i, nx+j, exit[i]*y.alpha[j])
		}
	}
	for i := 0; i < ny; i++ {
		for j := 0; j < ny; j++ {
			a.Set(nx+i, nx+j, y.a.At(i, j))
		}
	}
	alpha := make([]float64, n)
	copy(alpha, x.alpha)
	// Atom at zero in X starts Y immediately.
	if atom := 1 - sum(x.alpha); atom > 1e-12 {
		for j := 0; j < ny; j++ {
			alpha[nx+j] = atom * y.alpha[j]
		}
	}
	return MustNew(alpha, a)
}

// ConvolveAll folds Convolve over a non-empty sequence.
func ConvolveAll(ps ...*PH) (*PH, error) {
	if len(ps) == 0 {
		return nil, errors.New("phdist: ConvolveAll of nothing")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Convolve(out, p)
	}
	return out, nil
}

// Mixture returns the distribution that is ps[i] with probability ws[i].
// Weights must be nonnegative and sum to 1.
func Mixture(ws []float64, ps []*PH) (*PH, error) {
	if len(ws) != len(ps) || len(ws) == 0 {
		return nil, fmt.Errorf("phdist: Mixture %d weights, %d components", len(ws), len(ps))
	}
	var mass float64
	var n int
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("phdist: Mixture weight %d = %g", i, w)
		}
		mass += w
		n += ps[i].Order()
	}
	if math.Abs(mass-1) > 1e-9 {
		return nil, fmt.Errorf("phdist: Mixture weights sum to %g", mass)
	}
	a := matrix.Zeros(n, n)
	alpha := make([]float64, n)
	off := 0
	for i, p := range ps {
		for r := 0; r < p.Order(); r++ {
			alpha[off+r] = ws[i] * p.alpha[r]
			for c := 0; c < p.Order(); c++ {
				a.Set(off+r, off+c, p.a.At(r, c))
			}
		}
		off += p.Order()
	}
	return New(alpha, a)
}

// ScaleTime returns the distribution of c·X (c>0): generator divided by c.
func (p *PH) ScaleTime(c float64) (*PH, error) {
	if c <= 0 {
		return nil, fmt.Errorf("phdist: ScaleTime(%g)", c)
	}
	return New(p.Alpha(), matrix.Scale(1/c, p.a))
}

// FitMeanSCV returns a small PH matching a mean and squared coefficient of
// variation: exponential at scv≈1, an Erlang-like (possibly fractional via
// mixture) fit for scv<1, and a balanced two-phase hyperexponential for
// scv>1. This is the standard two-moment fit used to parameterize wave
// execution times from profiled task samples.
func FitMeanSCV(mean, scv float64) (*PH, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("phdist: FitMeanSCV mean %g", mean)
	}
	const eps = 1e-6
	switch {
	case math.Abs(scv-1) <= eps:
		return Exponential(1 / mean)
	case scv < eps:
		// Near-deterministic: cap the order to keep matrices small.
		return Erlang(64, 64/mean)
	case scv < 1:
		// Tijms' two-moment fit: for 1/K <= scv <= 1/(K-1), a mixture of
		// Erlang(K-1) and Erlang(K) with a common rate matches both moments.
		// The order is capped at 64 to keep downstream matrix work (moments,
		// convolutions) tractable; below scv=1/64 the fit degrades to a pure
		// Erlang(64), slightly overestimating variability.
		k := int(math.Ceil(1 / scv))
		if k < 2 {
			k = 2
		}
		if k > 64 {
			k = 64
		}
		kf := float64(k)
		p := (kf*scv - math.Sqrt(kf*(1+scv)-kf*kf*scv)) / (1 + scv)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rate := (kf - p) / mean
		ek1, err := Erlang(k-1, rate)
		if err != nil {
			return nil, err
		}
		ek, err := Erlang(k, rate)
		if err != nil {
			return nil, err
		}
		return Mixture([]float64{p, 1 - p}, []*PH{ek1, ek})
	default: // scv > 1: two-phase hyperexponential, balanced means.
		p1 := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
		p2 := 1 - p1
		r1 := 2 * p1 / mean
		r2 := 2 * p2 / mean
		return HyperExponential([]float64{p1, p2}, []float64{r1, r2})
	}
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
