// Package live reimplements the DiAS prototype's process-level runtime
// exactly as §3.3 describes it: a dispatcher thread that launches each
// dispatched job as an OS process via os/exec (building a Cmd and calling
// Start), a monitor that collects the exit status via Wait and relays
// completion to the dispatcher over a channel, and eviction by sending
// SIGKILL through cmd.Process.Kill().
//
// The simulated scheduler in package core is used for experiments; this
// package demonstrates the same deflator design against real processes
// (cmd/dias-live drives it).
package live

import (
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"time"
)

// Job is one command to execute as a priority job.
type Job struct {
	// Name labels the job in records.
	Name string
	// Class is the priority class (higher = higher priority).
	Class int
	// Path and Args form the command line.
	Path string
	Args []string
}

// Record is the outcome of one job.
type Record struct {
	Name        string
	Class       int
	SubmittedAt time.Time
	FinishedAt  time.Time
	// Evictions counts SIGKILL preemptions before the successful run.
	Evictions int
	// Err is the final run's error (nil on success).
	Err error
}

// queued is a job waiting in a buffer.
type queued struct {
	job         Job
	submittedAt time.Time
	evictions   int
}

// running couples a queued job with its live process.
type running struct {
	*queued
	cmd     *exec.Cmd
	evicted bool
}

type doneMsg struct {
	run *running
	err error
}

// Config configures a Runner.
type Config struct {
	// Classes is the number of priority buffers.
	Classes int
	// Preemptive evicts the running job (SIGKILL) when a higher-priority
	// job arrives, re-executing it later from scratch, like the paper's P
	// baseline. Non-preemptive is the DiAS mode.
	Preemptive bool
	// OnComplete, if set, is invoked from the dispatcher goroutine for
	// every completed job.
	OnComplete func(Record)
}

// Runner is the live deflator: priority buffers plus dispatcher/monitor
// goroutines.
type Runner struct {
	cfg Config

	submitCh chan *queued
	doneCh   chan doneMsg
	stopCh   chan struct{}
	stopped  chan struct{}

	// jobs tracks outstanding (submitted, not completed) jobs so Wait can
	// block until the system drains.
	jobs sync.WaitGroup

	mu      sync.Mutex
	records []Record
}

// NewRunner builds and starts a runner; callers must Stop it.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("live: %d classes", cfg.Classes)
	}
	r := &Runner{
		cfg:      cfg,
		submitCh: make(chan *queued),
		doneCh:   make(chan doneMsg),
		stopCh:   make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go r.dispatcher()
	return r, nil
}

// Submit enqueues a job. It returns an error after Stop.
func (r *Runner) Submit(job Job) error {
	if job.Class < 0 || job.Class >= r.cfg.Classes {
		return fmt.Errorf("live: class %d out of [0,%d)", job.Class, r.cfg.Classes)
	}
	if job.Path == "" {
		return errors.New("live: empty command path")
	}
	q := &queued{job: job, submittedAt: time.Now()}
	r.jobs.Add(1)
	select {
	case r.submitCh <- q:
		return nil
	case <-r.stopped:
		r.jobs.Done()
		return errors.New("live: runner stopped")
	}
}

// Wait blocks until every submitted job has completed.
func (r *Runner) Wait() { r.jobs.Wait() }

// Stop terminates the dispatcher, killing any running job. Pending queued
// jobs are discarded (their Wait slots released).
func (r *Runner) Stop() {
	select {
	case <-r.stopped:
		return
	default:
	}
	close(r.stopCh)
	<-r.stopped
}

// Records returns a copy of the completion records so far.
func (r *Runner) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.records))
	copy(out, r.records)
	return out
}

// dispatcher is the single goroutine owning scheduler state, exactly the
// paper's dispatcher thread: it selects which job to run, launches it, and
// reacts to completions relayed by monitor goroutines.
func (r *Runner) dispatcher() {
	defer close(r.stopped)
	buffers := make([][]*queued, r.cfg.Classes)
	var current *running

	dispatchNext := func() {
		if current != nil {
			return
		}
		for k := r.cfg.Classes - 1; k >= 0; k-- {
			if len(buffers[k]) == 0 {
				continue
			}
			q := buffers[k][0]
			buffers[k] = buffers[k][1:]
			// Build the cmd structure and launch with Start() (§3.3).
			cmd := exec.Command(q.job.Path, q.job.Args...)
			run := &running{queued: q, cmd: cmd}
			if err := cmd.Start(); err != nil {
				r.complete(q, err)
				continue
			}
			current = run
			// Monitor thread: surveil the job, collect its exit status via
			// Wait() and relay completion/eviction over a channel (§3.3).
			go func() {
				err := cmd.Wait()
				select {
				case r.doneCh <- doneMsg{run: run, err: err}:
				case <-r.stopCh:
				}
			}()
			return
		}
	}

	for {
		select {
		case q := <-r.submitCh:
			buffers[q.job.Class] = append(buffers[q.job.Class], q)
			if current != nil && r.cfg.Preemptive && q.job.Class > current.job.Class {
				// Evict with SIGKILL via cmd.Process.Kill() (§3.3); the
				// monitor's Wait() relays the exit, where we requeue.
				current.evicted = true
				_ = current.cmd.Process.Kill()
			}
			dispatchNext()
		case d := <-r.doneCh:
			if d.run.evicted {
				// Back to the head of its buffer for re-execution.
				d.run.evictions++
				d.run.evicted = false
				buffers[d.run.job.Class] = append([]*queued{d.run.queued}, buffers[d.run.job.Class]...)
			} else {
				r.complete(d.run.queued, d.err)
			}
			if current == d.run {
				current = nil
			}
			dispatchNext()
		case <-r.stopCh:
			if current != nil {
				// The monitor goroutine reaps the process via its own
				// Wait(); with stopCh closed it exits without relaying.
				_ = current.cmd.Process.Kill()
				r.jobs.Done()
			}
			for _, b := range buffers {
				for range b {
					r.jobs.Done()
				}
			}
			return
		}
	}
}

// complete records a finished job and releases its Wait slot.
func (r *Runner) complete(q *queued, err error) {
	rec := Record{
		Name:        q.job.Name,
		Class:       q.job.Class,
		SubmittedAt: q.submittedAt,
		FinishedAt:  time.Now(),
		Evictions:   q.evictions,
		Err:         err,
	}
	r.mu.Lock()
	r.records = append(r.records, rec)
	r.mu.Unlock()
	if r.cfg.OnComplete != nil {
		r.cfg.OnComplete(rec)
	}
	r.jobs.Done()
}
