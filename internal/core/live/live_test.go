package live

import (
	"testing"
	"time"
)

func sleepJob(name string, class int, dur string) Job {
	return Job{Name: name, Class: class, Path: "/bin/sh", Args: []string{"-c", "sleep " + dur}}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{Classes: 0}); err == nil {
		t.Fatal("zero classes accepted")
	}
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(Job{Name: "bad", Class: 5, Path: "/bin/true"}); err == nil {
		t.Fatal("class out of range accepted")
	}
	if err := r.Submit(Job{Name: "bad", Class: 0}); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestRunsJobsFCFS(t *testing.T) {
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for _, name := range []string{"a", "b", "c"} {
		if err := r.Submit(sleepJob(name, 0, "0.01")); err != nil {
			t.Fatal(err)
		}
	}
	r.Wait()
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if recs[i].Name != want {
			t.Fatalf("order = %v", recs)
		}
		if recs[i].Err != nil {
			t.Fatalf("job %s failed: %v", want, recs[i].Err)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Non-preemptive: while low runs, submit low2 then high; high must
	// complete before low2.
	r, err := NewRunner(Config{Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(sleepJob("low1", 0, "0.15")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := r.Submit(sleepJob("low2", 0, "0.01")); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(sleepJob("high", 1, "0.01")); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Name != "low1" || recs[1].Name != "high" || recs[2].Name != "low2" {
		t.Fatalf("order = %s, %s, %s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	if recs[0].Evictions != 0 {
		t.Fatal("non-preemptive run evicted a job")
	}
}

func TestPreemptiveEviction(t *testing.T) {
	r, err := NewRunner(Config{Classes: 2, Preemptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(sleepJob("low", 0, "0.5")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := r.Submit(sleepJob("high", 1, "0.02")); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Name != "high" {
		t.Fatalf("first completion = %s, want high", recs[0].Name)
	}
	// High must not have waited for low's full 0.5 s sleep.
	if waited := recs[0].FinishedAt.Sub(start); waited > 300*time.Millisecond {
		t.Fatalf("high waited %v; eviction did not happen", waited)
	}
	if recs[1].Name != "low" || recs[1].Evictions != 1 {
		t.Fatalf("low record = %+v", recs[1])
	}
	if recs[1].Err != nil {
		t.Fatalf("re-executed low failed: %v", recs[1].Err)
	}
}

func TestCompletionCallback(t *testing.T) {
	got := make(chan Record, 1)
	r, err := NewRunner(Config{Classes: 1, OnComplete: func(rec Record) { got <- rec }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(sleepJob("cb", 0, "0.01")); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-got:
		if rec.Name != "cb" {
			t.Fatalf("callback record %+v", rec)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callback never fired")
	}
}

func TestFailedCommandRecorded(t *testing.T) {
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(Job{Name: "boom", Class: 0, Path: "/bin/sh", Args: []string{"-c", "exit 3"}}); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	recs := r.Records()
	if len(recs) != 1 || recs[0].Err == nil {
		t.Fatalf("records = %+v", recs)
	}
}

func TestStartFailureRecorded(t *testing.T) {
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(Job{Name: "missing", Class: 0, Path: "/no/such/binary"}); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	recs := r.Records()
	if len(recs) != 1 || recs[0].Err == nil {
		t.Fatalf("records = %+v", recs)
	}
}

func TestStopKillsRunning(t *testing.T) {
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(sleepJob("long", 0, "10")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop did not return; running job not killed")
	}
	// Idempotent.
	r.Stop()
	if err := r.Submit(sleepJob("late", 0, "0.01")); err == nil {
		t.Fatal("submit after stop accepted")
	}
}

func TestStopReleasesQueuedWaiters(t *testing.T) {
	r, err := NewRunner(Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(sleepJob("running", 0, "5")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := r.Submit(sleepJob("queued", 0, "0.01")); err != nil {
		t.Fatal(err)
	}
	waited := make(chan struct{})
	go func() {
		r.Wait()
		close(waited)
	}()
	r.Stop()
	select {
	case <-waited:
	case <-time.After(3 * time.Second):
		t.Fatal("Wait hung after Stop")
	}
}
