package core

import (
	"errors"
	"fmt"

	"dias/internal/simtime"
)

// The paper selects drop ratios offline (§5.3: exhaustive model-driven
// search, re-invoked "upon every workload change") and deploys them as
// static thresholds. AdaptiveDeflator closes that loop online: it watches
// the response times of each class and walks the class's drop ratio up or
// down inside its accuracy ceiling to hold a latency target, so the system
// re-tunes itself when the workload drifts instead of requiring a new
// offline search.

// AdaptiveConfig parameterizes the controller.
type AdaptiveConfig struct {
	// TargetResponseSec[k] is class k's mean-response-time objective; 0
	// leaves the class uncontrolled (θ pinned at InitialTheta[k]).
	TargetResponseSec []float64
	// MaxTheta[k] is class k's accuracy ceiling (from the profiled
	// Figure-6 curve and the class's error tolerance); θ never exceeds it.
	MaxTheta []float64
	// InitialTheta[k] is the starting drop ratio (default 0).
	InitialTheta []float64
	// Window is the number of completions of a class between adjustments.
	Window int
	// Step is the additive θ adjustment per decision.
	Step float64
	// Hysteresis in (0,1]: θ is lowered only when the windowed mean falls
	// below Hysteresis x target, avoiding oscillation around the target.
	Hysteresis float64
}

func (c AdaptiveConfig) validate() error {
	k := len(c.TargetResponseSec)
	if k == 0 {
		return errors.New("core: adaptive config has no classes")
	}
	if len(c.MaxTheta) != k {
		return fmt.Errorf("core: %d theta ceilings for %d classes", len(c.MaxTheta), k)
	}
	if c.InitialTheta != nil && len(c.InitialTheta) != k {
		return fmt.Errorf("core: %d initial thetas for %d classes", len(c.InitialTheta), k)
	}
	for i := 0; i < k; i++ {
		if c.TargetResponseSec[i] < 0 {
			return fmt.Errorf("core: class %d target %g negative", i, c.TargetResponseSec[i])
		}
		if c.MaxTheta[i] < 0 || c.MaxTheta[i] >= 1 {
			return fmt.Errorf("core: class %d theta ceiling %g out of [0,1)", i, c.MaxTheta[i])
		}
		if c.InitialTheta != nil && (c.InitialTheta[i] < 0 || c.InitialTheta[i] > c.MaxTheta[i]) {
			return fmt.Errorf("core: class %d initial theta %g out of [0,%g]",
				i, c.InitialTheta[i], c.MaxTheta[i])
		}
	}
	if c.Window < 1 {
		return fmt.Errorf("core: adaptation window %d", c.Window)
	}
	if c.Step <= 0 || c.Step >= 1 {
		return fmt.Errorf("core: adaptation step %g out of (0,1)", c.Step)
	}
	if c.Hysteresis <= 0 || c.Hysteresis > 1 {
		return fmt.Errorf("core: hysteresis %g out of (0,1]", c.Hysteresis)
	}
	return nil
}

// ThetaChange records one controller decision for introspection.
type ThetaChange struct {
	At        simtime.Time
	Class     int
	Theta     float64 // new value
	WindowAvg float64 // the windowed mean response that triggered it
}

// AdaptiveDeflator is a windowed additive-increase/additive-decrease
// controller over per-class drop ratios. It satisfies the Deflator
// interface; plug it into Config.Deflator.
type AdaptiveDeflator struct {
	sim *simtime.Simulation
	cfg AdaptiveConfig

	theta   []float64
	window  [][]float64 // pending responses per class
	history []ThetaChange
}

// NewAdaptiveDeflator validates the config and initializes state.
func NewAdaptiveDeflator(sim *simtime.Simulation, cfg AdaptiveConfig) (*AdaptiveDeflator, error) {
	if sim == nil {
		return nil, errors.New("core: nil simulation")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := len(cfg.TargetResponseSec)
	d := &AdaptiveDeflator{
		sim:    sim,
		cfg:    cfg,
		theta:  make([]float64, k),
		window: make([][]float64, k),
	}
	if cfg.InitialTheta != nil {
		copy(d.theta, cfg.InitialTheta)
	}
	return d, nil
}

// DropRatios returns the current θ for the class, applied to the job's
// first stage (the map stage, as PolicyDA does).
func (d *AdaptiveDeflator) DropRatios(class int) []float64 {
	if class < 0 || class >= len(d.theta) || d.theta[class] <= 0 {
		return nil
	}
	return []float64{d.theta[class]}
}

// Observe feeds one completion into the class's window and adjusts θ when
// the window fills: over target → θ += Step (capped at the accuracy
// ceiling); below Hysteresis x target → θ -= Step (floored at 0).
func (d *AdaptiveDeflator) Observe(rec JobRecord) {
	k := rec.Class
	if k < 0 || k >= len(d.theta) || d.cfg.TargetResponseSec[k] == 0 {
		return
	}
	d.window[k] = append(d.window[k], rec.ResponseSec)
	if len(d.window[k]) < d.cfg.Window {
		return
	}
	var sum float64
	for _, r := range d.window[k] {
		sum += r
	}
	avg := sum / float64(len(d.window[k]))
	d.window[k] = d.window[k][:0]

	target := d.cfg.TargetResponseSec[k]
	old := d.theta[k]
	switch {
	case avg > target:
		d.theta[k] = min(old+d.cfg.Step, d.cfg.MaxTheta[k])
	case avg < target*d.cfg.Hysteresis:
		d.theta[k] = max(old-d.cfg.Step, 0)
	}
	if d.theta[k] != old {
		d.history = append(d.history, ThetaChange{
			At: d.sim.Now(), Class: k, Theta: d.theta[k], WindowAvg: avg,
		})
	}
}

// Theta returns the class's current drop ratio.
func (d *AdaptiveDeflator) Theta(class int) float64 {
	if class < 0 || class >= len(d.theta) {
		return 0
	}
	return d.theta[class]
}

// History returns the controller's decisions so far (a copy).
func (d *AdaptiveDeflator) History() []ThetaChange {
	out := make([]ThetaChange, len(d.history))
	copy(out, d.history)
	return out
}
