package core

import (
	"math"
	"testing"
	"testing/quick"

	"dias/internal/simtime"
	"dias/internal/trace"
)

func validAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		TargetResponseSec: []float64{50, 0},
		MaxTheta:          []float64{0.4, 0},
		Window:            4,
		Step:              0.05,
		Hysteresis:        0.7,
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	sim := simtime.New()
	mutations := map[string]func(*AdaptiveConfig){
		"noClasses":    func(c *AdaptiveConfig) { c.TargetResponseSec = nil },
		"ceilMismatch": func(c *AdaptiveConfig) { c.MaxTheta = []float64{0.4} },
		"negTarget":    func(c *AdaptiveConfig) { c.TargetResponseSec[0] = -1 },
		"ceilTooBig":   func(c *AdaptiveConfig) { c.MaxTheta[0] = 1 },
		"badWindow":    func(c *AdaptiveConfig) { c.Window = 0 },
		"badStep":      func(c *AdaptiveConfig) { c.Step = 0 },
		"bigStep":      func(c *AdaptiveConfig) { c.Step = 1 },
		"badHyst":      func(c *AdaptiveConfig) { c.Hysteresis = 0 },
		"initAboveCeil": func(c *AdaptiveConfig) {
			c.InitialTheta = []float64{0.5, 0}
		},
	}
	for name, mutate := range mutations {
		cfg := validAdaptiveConfig()
		mutate(&cfg)
		if _, err := NewAdaptiveDeflator(sim, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewAdaptiveDeflator(nil, validAdaptiveConfig()); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewAdaptiveDeflator(sim, validAdaptiveConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func feed(d *AdaptiveDeflator, class, n int, resp float64) {
	for i := 0; i < n; i++ {
		d.Observe(JobRecord{Class: class, ResponseSec: resp})
	}
}

func TestAdaptiveRaisesThetaWhenOverTarget(t *testing.T) {
	d, err := NewAdaptiveDeflator(simtime.New(), validAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DropRatios(0); got != nil {
		t.Fatalf("initial drops %v, want nil", got)
	}
	feed(d, 0, 4, 100) // one window, 2x over the 50s target
	if got := d.Theta(0); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("theta %g after one over-target window, want 0.05", got)
	}
	// Keep overloading: theta must climb but clamp at the 0.4 ceiling.
	for i := 0; i < 20; i++ {
		feed(d, 0, 4, 100)
	}
	if got := d.Theta(0); got != 0.4 {
		t.Fatalf("theta %g after sustained overload, want ceiling 0.4", got)
	}
	drops := d.DropRatios(0)
	if len(drops) != 1 || drops[0] != 0.4 {
		t.Fatalf("drops %v, want [0.4]", drops)
	}
}

func TestAdaptiveLowersThetaWithHysteresis(t *testing.T) {
	cfg := validAdaptiveConfig()
	cfg.InitialTheta = []float64{0.2, 0}
	d, err := NewAdaptiveDeflator(simtime.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// In the hysteresis band (0.7*50=35 .. 50): no change.
	feed(d, 0, 4, 40)
	if got := d.Theta(0); got != 0.2 {
		t.Fatalf("theta %g inside hysteresis band, want unchanged 0.2", got)
	}
	// Well below: step down, flooring at 0.
	for i := 0; i < 10; i++ {
		feed(d, 0, 4, 10)
	}
	if got := d.Theta(0); got != 0 {
		t.Fatalf("theta %g after sustained underload, want 0", got)
	}
}

func TestAdaptiveIgnoresUncontrolledClasses(t *testing.T) {
	d, err := NewAdaptiveDeflator(simtime.New(), validAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(d, 1, 50, 1e6) // class 1 has target 0: uncontrolled
	if got := d.Theta(1); got != 0 {
		t.Fatalf("uncontrolled class moved to %g", got)
	}
	d.Observe(JobRecord{Class: 7, ResponseSec: 1}) // out of range: ignored
	if len(d.History()) != 0 {
		t.Fatal("history recorded for ignored observations")
	}
}

func TestAdaptiveHistoryRecordsDecisions(t *testing.T) {
	sim := simtime.New()
	d, err := NewAdaptiveDeflator(sim, validAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(d, 0, 4, 100)
	h := d.History()
	if len(h) != 1 {
		t.Fatalf("%d history entries, want 1", len(h))
	}
	if h[0].Class != 0 || h[0].Theta != 0.05 || h[0].WindowAvg != 100 {
		t.Fatalf("history %+v", h[0])
	}
	// History is a copy.
	h[0].Theta = 99
	if d.History()[0].Theta == 99 {
		t.Fatal("History returns shared storage")
	}
}

// Property: theta always stays within [0, MaxTheta] for any observation
// stream.
func TestPropertyAdaptiveThetaBounds(t *testing.T) {
	f := func(responses []float64) bool {
		cfg := AdaptiveConfig{
			TargetResponseSec: []float64{30},
			MaxTheta:          []float64{0.35},
			Window:            2,
			Step:              0.1,
			Hysteresis:        0.8,
		}
		d, err := NewAdaptiveDeflator(simtime.New(), cfg)
		if err != nil {
			return false
		}
		for _, r := range responses {
			d.Observe(JobRecord{Class: 0, ResponseSec: math.Abs(r)})
			th := d.Theta(0)
			if th < 0 || th > 0.35+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Integration: an overloaded low class with a latency target makes the
// scheduler shed load until responses meet the target, and the effective
// drop ratios recorded on completions reflect the controller's theta.
func TestAdaptiveDeflatorEndToEnd(t *testing.T) {
	// Low-class jobs of 20 tasks on 5 slots = 4 waves x 1s = 4s execution,
	// arriving every 3.2s: the queue builds and responses blow past the
	// 25s target, so the controller must deflate.
	run := func(adaptive bool) (*rig, *AdaptiveDeflator) {
		r := newRig(t, 5, 1, Config{Classes: 2})
		var ctl *AdaptiveDeflator
		if adaptive {
			var err error
			ctl, err = NewAdaptiveDeflator(r.sim, AdaptiveConfig{
				TargetResponseSec: []float64{25, 0},
				MaxTheta:          []float64{0.5, 0},
				Window:            3,
				Step:              0.1,
				Hysteresis:        0.7,
			})
			if err != nil {
				t.Fatal(err)
			}
			var errNew error
			r.sch, errNew = New(r.sim, r.clu, r.eng, Config{Classes: 2, Deflator: ctl})
			if errNew != nil {
				t.Fatal(errNew)
			}
		}
		for i := 0; i < 60; i++ {
			job := simpleJob("low", 20)
			at := simtime.Time(float64(i) * 3.2)
			r.sim.At(at, func() {
				if err := r.sch.Arrive(0, job); err != nil {
					t.Errorf("arrive: %v", err)
				}
			})
		}
		r.sim.Run()
		return r, ctl
	}

	r, ctl := run(true)
	if got := ctl.Theta(0); got == 0 {
		t.Fatal("controller never raised theta under overload")
	}
	recs := r.sch.Records()
	if len(recs) != 60 {
		t.Fatalf("%d records, want 60", len(recs))
	}
	var lateDropped int
	for _, rec := range recs[40:] {
		if rec.EffectiveDropRatio > 0 {
			lateDropped++
		}
	}
	if lateDropped == 0 {
		t.Fatal("no late jobs were deflated")
	}
	if len(ctl.History()) == 0 {
		t.Fatal("controller made no recorded decisions")
	}

	// Steady-state responses must be pulled toward the target compared to
	// an uncontrolled NP run of the same stream.
	base, _ := run(false)
	tailMean := func(rs []JobRecord) float64 {
		var sum float64
		for _, rec := range rs[40:] {
			sum += rec.ResponseSec
		}
		return sum / float64(len(rs[40:]))
	}
	ctlMean, unctlMean := tailMean(recs), tailMean(base.sch.Records())
	if ctlMean >= unctlMean {
		t.Fatalf("controlled tail mean %.1fs not below uncontrolled %.1fs", ctlMean, unctlMean)
	}
}

func TestAdaptiveComposesWithSprinting(t *testing.T) {
	// The controller and the sprinter are independent knobs: run both at
	// once and check that low-priority jobs get deflated while the
	// sprinter still fires for high-priority jobs.
	r := newRig(t, 4, 1, Config{Classes: 2})
	ctl, err := NewAdaptiveDeflator(r.sim, AdaptiveConfig{
		TargetResponseSec: []float64{20, 0},
		MaxTheta:          []float64{0.4, 0},
		Window:            2,
		Step:              0.1,
		Hysteresis:        0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := &trace.Log{}
	r.sch, err = New(r.sim, r.clu, r.eng, Config{
		Classes:  2,
		Deflator: ctl,
		Trace:    log,
		Sprint: &SprintPolicy{
			TimeoutSec:     []float64{-1, 0}, // sprint high class immediately
			BudgetJoules:   1e6,
			DrainWatts:     900,
			ReplenishWatts: 90,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overloaded low class plus occasional high arrivals.
	for i := 0; i < 30; i++ {
		job := simpleJob("low", 16)
		at := simtime.Time(float64(i) * 3)
		r.sim.At(at, func() {
			if err := r.sch.Arrive(0, job); err != nil {
				t.Errorf("arrive low: %v", err)
			}
		})
	}
	for i := 0; i < 5; i++ {
		job := simpleJob("high", 8)
		at := simtime.Time(10 + float64(i)*20)
		r.sim.At(at, func() {
			if err := r.sch.Arrive(1, job); err != nil {
				t.Errorf("arrive high: %v", err)
			}
		})
	}
	r.sim.Run()
	if ctl.Theta(0) == 0 {
		t.Error("controller never deflated the overloaded low class")
	}
	starts := log.Filter(trace.SprintStart)
	if len(starts) == 0 {
		t.Error("sprinter never fired for high-priority jobs")
	}
	for _, e := range starts {
		if e.Class != 1 {
			t.Errorf("sprint started for class %d", e.Class)
		}
	}
	if got := len(r.sch.Records()); got != 35 {
		t.Fatalf("%d records, want 35", got)
	}
}

func TestPolicyDiASConstructor(t *testing.T) {
	sprint := SprintPolicy{
		TimeoutSec:     []float64{-1, 65},
		BudgetJoules:   22000,
		DrainWatts:     900,
		ReplenishWatts: 90,
	}
	cfg := PolicyDiAS([]float64{0.2, 0}, sprint)
	if err := cfg.validate(); err != nil {
		t.Fatalf("PolicyDiAS invalid: %v", err)
	}
	if cfg.Preemptive {
		t.Fatal("DiAS must be non-preemptive")
	}
	if cfg.Sprint == nil || cfg.Sprint.TimeoutSec[1] != 65 {
		t.Fatalf("sprint policy not carried: %+v", cfg.Sprint)
	}
	if len(cfg.DropRatios[0]) != 1 || cfg.DropRatios[0][0] != 0.2 || cfg.DropRatios[1] != nil {
		t.Fatalf("drop ratios %+v", cfg.DropRatios)
	}
	// Sprinting() reports false when idle.
	r := newRig(t, 2, 1, cfg)
	if r.sch.Sprinting() {
		t.Fatal("fresh scheduler reports sprinting")
	}
}

func TestConfigRejectsBothDropSourcesAndAllowsDeflator(t *testing.T) {
	sim := simtime.New()
	d, err := NewAdaptiveDeflator(sim, validAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := Config{Classes: 2, DropRatios: [][]float64{{0.1}, nil}, Deflator: d}
	if err := bad.validate(); err == nil {
		t.Fatal("both DropRatios and Deflator accepted")
	}
	ok := Config{Classes: 2, Deflator: d}
	if err := ok.validate(); err != nil {
		t.Fatalf("deflator-only config rejected: %v", err)
	}
}
