// Package core implements DiAS itself (§3): per-priority job buffers, the
// task deflator that dispatches jobs non-preemptively with per-class
// approximation levels θk, and the sprinter that temporarily raises CPU
// frequency for dispatched jobs after a per-class timeout Tk under a
// replenishing energy budget.
//
// The same scheduler also implements the paper's baselines: preemptive
// priority with eviction and re-execution (P), plain non-preemptive
// priority (NP), non-preemptive with sprinting only (NPS), and differential
// approximation without sprinting (DA). Policy constructors for each are
// provided.
package core

import (
	"errors"
	"fmt"
	"math"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/ring"
	"dias/internal/simtime"
	"dias/internal/telemetry"
	"dias/internal/trace"
)

// SprintPolicy configures the sprinter (§3.2, §3.3 "Sprinter").
type SprintPolicy struct {
	// TimeoutSec[k] is the sprinting timeout Tk for class k: once a class-k
	// job has run this long, the sprinter raises the frequency until the
	// job ends or the budget depletes. Negative means class k never
	// sprints. Zero sprints from dispatch (the paper's unlimited setup).
	TimeoutSec []float64
	// BudgetJoules is the sprinting energy budget (paper: 22 kJ for the
	// limited scenario). Use math.Inf(1) for unlimited sprinting.
	BudgetJoules float64
	// DrainWatts is the extra power drawn while sprinting, depleting the
	// budget (paper: 270 W - 180 W = 90 W per node, so 900 W for ten).
	DrainWatts float64
	// ReplenishWatts refills the budget while not sprinting, up to
	// BudgetJoules (the paper cites e.g. 6 sprint-minutes per hour).
	ReplenishWatts float64
}

func (p *SprintPolicy) validate(classes int) error {
	if len(p.TimeoutSec) != classes {
		return fmt.Errorf("core: %d sprint timeouts for %d classes", len(p.TimeoutSec), classes)
	}
	if p.BudgetJoules <= 0 {
		return fmt.Errorf("core: sprint budget %g", p.BudgetJoules)
	}
	if !math.IsInf(p.BudgetJoules, 1) && p.DrainWatts <= 0 {
		return errors.New("core: finite sprint budget needs positive drain watts")
	}
	if p.ReplenishWatts < 0 {
		return fmt.Errorf("core: replenish rate %g", p.ReplenishWatts)
	}
	return nil
}

// Config selects the scheduling policy.
type Config struct {
	// Classes is the number of priority classes K; class index k in
	// [0, K) with higher k = higher priority, as in the paper.
	Classes int
	// Preemptive evicts the running job when a higher-priority one
	// arrives; the evicted job returns to the head of its buffer and
	// re-executes from scratch (the paper's P baseline).
	Preemptive bool
	// DropRatios[k] holds the per-stage approximation levels θ applied to
	// class-k jobs at dispatch; nil means no dropping for that class.
	DropRatios [][]float64
	// Deflator, when non-nil, chooses drop ratios dynamically at each
	// dispatch and observes every completion (e.g. AdaptiveDeflator). It
	// is mutually exclusive with DropRatios.
	Deflator Deflator
	// Sprint enables the sprinter; nil disables sprinting.
	Sprint *SprintPolicy
	// Admission, when non-nil, gates every arrival before it is buffered:
	// rejected jobs never enter a buffer and are reported as rejection
	// records (JobRecord.Rejected) instead of completions. Nil admits
	// everything, byte-identical to admission.AlwaysAdmit. Policies that
	// implement admission.Learner are fed every completion.
	Admission admission.Policy
	// KeepOutputs retains job outputs in records (needed for accuracy
	// measurements; costs memory on long runs).
	KeepOutputs bool
	// OnRecord, when non-nil, receives every completed job's record the
	// moment it is produced — the streaming hook for metrics accumulators.
	OnRecord func(JobRecord)
	// DiscardRecords stops the scheduler from retaining completed-job
	// records in memory (Records() then stays empty). Combine with
	// OnRecord to aggregate long runs in O(classes) instead of O(jobs)
	// memory.
	DiscardRecords bool
	// Trace, when non-nil, receives scheduler events (arrivals,
	// dispatches, evictions, sprint transitions, completions).
	Trace *trace.Log
	// Tracer, when non-nil, receives the full job lifecycle as telemetry
	// spans (admission verdicts with policy names, dispatches, evictions,
	// sprint windows, completions with failure reasons). Every emission is
	// guarded on nil, so a disabled tracer costs one pointer test on the
	// allocation-free hot paths.
	Tracer telemetry.Tracer
}

func (c Config) validate() error {
	if c.Classes <= 0 {
		return fmt.Errorf("core: %d classes", c.Classes)
	}
	if c.DropRatios != nil && len(c.DropRatios) != c.Classes {
		return fmt.Errorf("core: %d drop-ratio sets for %d classes", len(c.DropRatios), c.Classes)
	}
	for k, drops := range c.DropRatios {
		for _, th := range drops {
			if th < 0 || th >= 1 {
				return fmt.Errorf("core: class %d drop ratio %g out of [0,1)", k, th)
			}
		}
	}
	if c.Deflator != nil && c.DropRatios != nil {
		return errors.New("core: DropRatios and Deflator are mutually exclusive")
	}
	if c.Sprint != nil {
		if err := c.Sprint.validate(c.Classes); err != nil {
			return err
		}
		if c.Preemptive {
			return errors.New("core: sprinting with preemptive eviction is not a paper scenario")
		}
	}
	return nil
}

// StateObserver receives O(1) notifications at the scheduler's queue and
// occupancy transitions: job buffered (arrival or eviction re-queue), job
// unbuffered (dispatch), and engine occupancy flips. It is the push
// counterpart of the polled getters (QueuedJobsInClass, Busy), letting a
// front-end — the federation's LoadIndex — maintain routing state
// incrementally instead of rescanning every buffer per arrival.
// Callbacks run in simulation context and must not call back into the
// scheduler or allocate.
type StateObserver interface {
	// JobQueued reports a class-k job entering a buffer (arrival, or an
	// evicted job returning to the head of its buffer).
	JobQueued(class int)
	// JobDequeued reports the head-of-buffer class-k job leaving for the
	// engine (or being dropped on an invalid submission).
	JobDequeued(class int)
	// BusyChanged reports the engine occupancy flipping: true when a job
	// is dispatched, false when it completes or is evicted.
	BusyChanged(busy bool)
}

// SetObserver installs the state observer. Attach it before the first
// arrival: the observer sees transitions only, not pre-existing state.
// A nil observer detaches.
func (s *Scheduler) SetObserver(obs StateObserver) { s.obs = obs }

// Deflator decides per-stage drop ratios at dispatch time and observes
// completions, enabling closed-loop approximation control. The static
// policy (Config.DropRatios) covers the paper's experiments; see
// AdaptiveDeflator for the feedback variant.
type Deflator interface {
	// DropRatios returns the per-stage θ vector for the next class-k
	// dispatch (nil = no dropping).
	DropRatios(class int) []float64
	// Observe is invoked with each completed job's record.
	Observe(rec JobRecord)
}

// PolicyP is the paper's preemptive priority baseline.
func PolicyP(classes int) Config {
	return Config{Classes: classes, Preemptive: true}
}

// PolicyNP is the non-preemptive priority baseline.
func PolicyNP(classes int) Config {
	return Config{Classes: classes}
}

// PolicyDA is differential approximation: non-preemptive with per-class
// single-stage drop ratios (θ applied to the job's first stage, the map
// stage). thetas[k] is class k's ratio; the paper writes DA(θhigh,θlow)
// with the high class first, here index order is low..high.
func PolicyDA(thetas []float64) Config {
	cfg := Config{Classes: len(thetas), DropRatios: make([][]float64, len(thetas))}
	for k, th := range thetas {
		if th > 0 {
			cfg.DropRatios[k] = []float64{th}
		}
	}
	return cfg
}

// PolicyDiAS is the full system: differential approximation plus
// sprinting.
func PolicyDiAS(thetas []float64, sprint SprintPolicy) Config {
	cfg := PolicyDA(thetas)
	cfg.Sprint = &sprint
	return cfg
}

// JobRecord is the per-job outcome the experiments aggregate.
type JobRecord struct {
	Class      int
	Name       string
	ArrivedAt  simtime.Time
	FinishedAt simtime.Time
	// ResponseSec = queueing + execution; ExecSec is the duration of the
	// final (successful) attempt; QueueSec the rest, including time lost
	// to evicted attempts.
	ResponseSec float64
	ExecSec     float64
	QueueSec    float64
	// Evictions counts preemptions suffered.
	Evictions int
	// SlotSeconds is machine time of the successful attempt.
	SlotSeconds float64
	// EffectiveDropRatio is 1 - executed/total tasks.
	EffectiveDropRatio float64
	// Retries counts task attempts aborted by failures (injected faults or
	// node crashes) and re-executed during the job.
	Retries int
	// Failed reports a job the engine aborted with a task's retry budget
	// exhausted; its latency fields describe the failed run, not a
	// completed service.
	Failed bool
	// Rejected reports a job the admission policy shed at arrival: it
	// never entered a buffer, so every latency field is zero and
	// ArrivedAt == FinishedAt. Every submitted job produces exactly one
	// record — completed, failed, or rejected.
	Rejected bool
	// Output holds the job result records when Config.KeepOutputs is set.
	Output []engine.Record
}

// entry is a buffered or running job. Entries are pooled on the
// scheduler's freelist: each struct carries a completion closure bound
// once at allocation and reused across all the jobs it represents, so
// steady-state arrivals perform no entry or closure allocation.
type entry struct {
	class        int
	job          *engine.Job
	arrivedAt    simtime.Time
	dispatchedAt simtime.Time
	evictions    int
	engineID     engine.JobID
	span         telemetry.SpanID

	// completeFn is the pre-bound s.onComplete(en, res) callback handed to
	// the engine for every job this entry struct carries.
	completeFn func(engine.JobResult)
}

// Scheduler is the DiAS runtime: deflator + buffers + sprinter driving one
// processing engine.
type Scheduler struct {
	sim *simtime.Simulation
	clu *cluster.Cluster
	eng *engine.Engine
	cfg Config

	buffers []ring.Deque[*entry]
	current *entry
	// entryFree recycles entry structs (and their pre-bound completion
	// closures) across jobs.
	entryFree []*entry
	// obs, when non-nil, receives queue/occupancy transitions (see
	// StateObserver).
	obs StateObserver
	// admLearner caches the admission policy's Learner side (nil when the
	// policy does not learn), so completions avoid a type assertion each.
	admLearner admission.Learner
	// rejected counts admission-shed jobs per class.
	rejected []int

	records []JobRecord

	// Sprinter state.
	sprintTimer  *simtime.Timer
	depleteTimer *simtime.Timer
	budget       float64
	budgetCap    float64
	budgetAt     simtime.Time
	sprinting    bool
}

// New builds a scheduler. The engine must be dedicated to this scheduler:
// DiAS dispatches exactly one job at a time (§4, single-server view).
func New(sim *simtime.Simulation, clu *cluster.Cluster, eng *engine.Engine, cfg Config) (*Scheduler, error) {
	if sim == nil || clu == nil || eng == nil {
		return nil, errors.New("core: nil dependency")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		sim:      sim,
		clu:      clu,
		eng:      eng,
		cfg:      cfg,
		buffers:  make([]ring.Deque[*entry], cfg.Classes),
		rejected: make([]int, cfg.Classes),
	}
	if l, ok := cfg.Admission.(admission.Learner); ok {
		s.admLearner = l
	}
	if cfg.Sprint != nil {
		s.sprintTimer = simtime.NewTimer(sim)
		s.depleteTimer = simtime.NewTimer(sim)
		s.budget = cfg.Sprint.BudgetJoules
		s.budgetCap = cfg.Sprint.BudgetJoules
		s.budgetAt = sim.Now()
	}
	return s, nil
}

// Arrive submits a class-k job at the current virtual time: the admission
// policy (if any) gates it, and an admitted job is enqueued. A shed job is
// reported as a rejection record; a Defer verdict also sheds, since a
// single stack has nowhere else to send it (the federation dispatcher
// uses Offer to spill deferred arrivals across members instead). It must
// be called from simulation context (an event callback).
func (s *Scheduler) Arrive(class int, job *engine.Job) error {
	dec, err := s.Offer(class, job)
	if err != nil {
		return err
	}
	if dec == admission.Defer {
		s.Reject(class, job)
	}
	return nil
}

// Offer submits a class-k job for admission: Accept enqueues it, Reject
// records the shed, and Defer does nothing — the caller owns a deferred
// job and must either place it elsewhere or hand it back to Reject.
func (s *Scheduler) Offer(class int, job *engine.Job) (admission.Decision, error) {
	if class < 0 || class >= s.cfg.Classes {
		return admission.Reject, fmt.Errorf("core: class %d out of [0,%d)", class, s.cfg.Classes)
	}
	if job == nil {
		return admission.Reject, errors.New("core: nil job")
	}
	if s.cfg.Admission != nil {
		info := admission.JobInfo{Name: job.Name, Class: class, SizeBytes: job.SizeBytes}
		switch dec := s.cfg.Admission.Admit(s.sim.Now(), info, s); dec {
		case admission.Accept:
			// Fall through to the enqueue below.
		case admission.Reject:
			s.Reject(class, job)
			return admission.Reject, nil
		case admission.Defer:
			if s.cfg.Tracer != nil {
				s.cfg.Tracer.JobDeferred(s.sim.Now(), job.Name, class, s.cfg.Admission.Name())
			}
			return admission.Defer, nil
		default:
			return admission.Reject, fmt.Errorf("core: admission policy %s returned %v", s.cfg.Admission.Name(), dec)
		}
	}
	en := s.newEntry(class, job)
	s.trace(trace.Arrival, en, "")
	if s.cfg.Tracer != nil {
		en.span = s.cfg.Tracer.JobSubmitted(s.sim.Now(), job.Name, class)
		if s.cfg.Admission != nil {
			s.cfg.Tracer.JobAdmitted(s.sim.Now(), en.span, s.cfg.Admission.Name())
		}
	}
	s.buffers[class].PushBack(en)
	if s.obs != nil {
		s.obs.JobQueued(class)
	}
	if s.current == nil {
		s.dispatchNext()
		return admission.Accept, nil
	}
	if s.cfg.Preemptive && class > s.current.class {
		s.evictCurrent()
		s.dispatchNext()
	}
	return admission.Accept, nil
}

// Reject sheds a class-k job at the current virtual time: it counts the
// rejection and emits a rejection record (Rejected true, zero latencies)
// through the same record stream completions use, so every submitted job
// yields exactly one record. The federation dispatcher calls this when a
// deferred arrival finds no member willing to take it.
func (s *Scheduler) Reject(class int, job *engine.Job) {
	if class >= 0 && class < len(s.rejected) {
		s.rejected[class]++
	}
	if s.cfg.Trace != nil {
		name := ""
		if job != nil {
			name = job.Name
		}
		s.cfg.Trace.Record(s.sim.Now(), trace.Reject, name, class, "")
	}
	if s.cfg.Tracer != nil {
		name, policy := "", ""
		if job != nil {
			name = job.Name
		}
		if s.cfg.Admission != nil {
			policy = s.cfg.Admission.Name()
		}
		s.cfg.Tracer.JobRejected(s.sim.Now(), name, class, policy)
	}
	now := s.sim.Now()
	rec := JobRecord{
		Class:      class,
		ArrivedAt:  now,
		FinishedAt: now,
		Rejected:   true,
	}
	if job != nil {
		rec.Name = job.Name
	}
	if s.cfg.OnRecord != nil {
		s.cfg.OnRecord(rec)
	}
	if !s.cfg.DiscardRecords {
		s.records = append(s.records, rec)
	}
}

// evictCurrent kills the running job and returns it to the head of its
// buffer for re-execution from scratch (§3.2 baseline behaviour).
func (s *Scheduler) evictCurrent() {
	victim := s.current
	s.current = nil
	if _, err := s.eng.Kill(victim.engineID); err != nil {
		// The completion callback may already be queued for this instant;
		// treat as completed and let the callback handle it.
		s.current = victim
		return
	}
	victim.evictions++
	s.trace(trace.Evict, victim, "")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.JobEvicted(s.sim.Now(), victim.span)
	}
	s.buffers[victim.class].PushFront(victim)
	if s.obs != nil {
		s.obs.BusyChanged(false)
		s.obs.JobQueued(victim.class)
	}
}

// newEntry takes an entry off the freelist (or allocates one with its
// completion closure bound) and initializes it for one arriving job.
func (s *Scheduler) newEntry(class int, job *engine.Job) *entry {
	var en *entry
	if n := len(s.entryFree); n > 0 {
		en = s.entryFree[n-1]
		s.entryFree[n-1] = nil
		s.entryFree = s.entryFree[:n-1]
	} else {
		en = &entry{}
		en.completeFn = func(res engine.JobResult) { s.onComplete(en, res) }
	}
	en.class, en.job, en.arrivedAt = class, job, s.sim.Now()
	en.dispatchedAt, en.evictions, en.engineID, en.span = 0, 0, 0, 0
	return en
}

// freeEntry returns a completed entry to the freelist. Callers must have
// dropped every reference to it first.
func (s *Scheduler) freeEntry(en *entry) {
	en.job = nil
	s.entryFree = append(s.entryFree, en)
}

// trace records a scheduler event when tracing is enabled.
func (s *Scheduler) trace(kind trace.Kind, en *entry, detail string) {
	if s.cfg.Trace == nil {
		return
	}
	name, class := "", -1
	if en != nil {
		name, class = en.job.Name, en.class
	}
	s.cfg.Trace.Record(s.sim.Now(), kind, name, class, detail)
}

// dispatchNext sends the head of the highest non-empty buffer to the
// engine with its class's approximation levels, and arms the sprinter.
func (s *Scheduler) dispatchNext() {
	if s.current != nil {
		return
	}
	var next *entry
	for k := s.cfg.Classes - 1; k >= 0; k-- {
		if s.buffers[k].Len() > 0 {
			next = s.buffers[k].PopFront()
			break
		}
	}
	if next == nil {
		return
	}
	if s.obs != nil {
		s.obs.JobDequeued(next.class)
	}
	next.dispatchedAt = s.sim.Now()
	var drops []float64
	switch {
	case s.cfg.Deflator != nil:
		drops = s.cfg.Deflator.DropRatios(next.class)
	case s.cfg.DropRatios != nil:
		drops = s.cfg.DropRatios[next.class]
	}
	id, err := s.eng.Submit(next.job, engine.SubmitOptions{
		DropRatios: drops,
		OnComplete: next.completeFn,
		Span:       next.span,
	})
	if err != nil {
		// Invalid job: drop it rather than wedging the queue. Validation
		// happens at submission time in experiments, so this is defensive.
		s.freeEntry(next)
		s.dispatchNext()
		return
	}
	next.engineID = id
	s.current = next
	s.trace(trace.Dispatch, next, "")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.JobDispatched(s.sim.Now(), next.span)
	}
	if s.obs != nil {
		s.obs.BusyChanged(true)
	}
	s.armSprinter(next)
}

func (s *Scheduler) onComplete(en *entry, res engine.JobResult) {
	if s.current == en {
		s.current = nil
		if s.obs != nil {
			s.obs.BusyChanged(false)
		}
	}
	s.stopSprint()
	s.trace(trace.Complete, en, "")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.JobCompleted(s.sim.Now(), en.span, res.Failed, res.FailureReason)
	}
	now := s.sim.Now()
	rec := JobRecord{
		Class:              en.class,
		Name:               en.job.Name,
		ArrivedAt:          en.arrivedAt,
		FinishedAt:         now,
		ResponseSec:        now.Sub(en.arrivedAt).Seconds(),
		ExecSec:            now.Sub(en.dispatchedAt).Seconds(),
		Evictions:          en.evictions,
		SlotSeconds:        res.SlotSeconds,
		EffectiveDropRatio: res.EffectiveDropRatio,
		Retries:            res.TaskRetries,
		Failed:             res.Failed,
	}
	rec.QueueSec = rec.ResponseSec - rec.ExecSec
	if s.cfg.KeepOutputs {
		rec.Output = res.Output
	}
	if s.cfg.OnRecord != nil {
		s.cfg.OnRecord(rec)
	}
	if !s.cfg.DiscardRecords {
		s.records = append(s.records, rec)
	}
	if s.cfg.Deflator != nil {
		s.cfg.Deflator.Observe(rec)
	}
	if s.admLearner != nil && !rec.Failed {
		s.admLearner.Observe(rec.Class, rec.ExecSec, rec.ResponseSec)
	}
	s.freeEntry(en)
	s.dispatchNext()
}

// --- Sprinter -------------------------------------------------------------

// armSprinter schedules the sprint start for a newly dispatched job.
func (s *Scheduler) armSprinter(en *entry) {
	if s.cfg.Sprint == nil {
		return
	}
	timeout := s.cfg.Sprint.TimeoutSec[en.class]
	if timeout < 0 {
		return
	}
	s.sprintTimer.Reset(simtime.Duration(timeout), func() { s.startSprint(en) })
}

// updateBudget accrues replenishment (idle) or drain (sprinting) up to now.
func (s *Scheduler) updateBudget() {
	if s.cfg.Sprint == nil || math.IsInf(s.budgetCap, 1) {
		return
	}
	now := s.sim.Now()
	dt := now.Sub(s.budgetAt).Seconds()
	if dt > 0 {
		if s.sprinting {
			s.budget -= dt * s.cfg.Sprint.DrainWatts
			if s.budget < 0 {
				s.budget = 0
			}
		} else {
			s.budget += dt * s.cfg.Sprint.ReplenishWatts
			if s.budget > s.budgetCap {
				s.budget = s.budgetCap
			}
		}
	}
	s.budgetAt = now
}

func (s *Scheduler) startSprint(en *entry) {
	if s.current != en || s.sprinting {
		return
	}
	s.updateBudget()
	if s.budget <= 0 {
		return
	}
	s.sprinting = true
	s.clu.SetSprinting(true)
	s.trace(trace.SprintStart, en, "")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.SprintChanged(s.sim.Now(), true, "")
	}
	if !math.IsInf(s.budgetCap, 1) {
		ttl := s.budget / s.cfg.Sprint.DrainWatts
		s.depleteTimer.Reset(simtime.Duration(ttl), s.onBudgetDepleted)
	}
}

func (s *Scheduler) onBudgetDepleted() {
	if !s.sprinting {
		return
	}
	s.updateBudget()
	s.sprinting = false
	s.clu.SetSprinting(false)
	s.trace(trace.SprintStop, s.current, "budget-depleted")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.SprintChanged(s.sim.Now(), false, "budget-depleted")
	}
}

// stopSprint ends sprinting when the sprinted job leaves the engine and
// cancels any pending sprint start.
func (s *Scheduler) stopSprint() {
	if s.cfg.Sprint == nil {
		return
	}
	s.sprintTimer.Stop()
	s.depleteTimer.Stop()
	if s.sprinting {
		s.updateBudget()
		s.sprinting = false
		s.clu.SetSprinting(false)
		s.trace(trace.SprintStop, s.current, "job-left-engine")
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.SprintChanged(s.sim.Now(), false, "job-left-engine")
		}
	}
}

// --- Introspection ---------------------------------------------------------

// Records returns the completed-job records so far (empty when the
// scheduler was configured with DiscardRecords). The slice is shared;
// callers must not mutate it.
func (s *Scheduler) Records() []JobRecord { return s.records }

// QueuedJobs returns the number of buffered (not yet dispatched) jobs.
func (s *Scheduler) QueuedJobs() int {
	var n int
	for k := range s.buffers {
		n += s.buffers[k].Len()
	}
	return n
}

// QueuedJobsInClass returns the number of buffered (not yet dispatched)
// class-k jobs; out-of-range classes report zero. Federation routing
// policies read this to compare per-class backlogs across clusters.
func (s *Scheduler) QueuedJobsInClass(class int) int {
	if class < 0 || class >= len(s.buffers) {
		return 0
	}
	return s.buffers[class].Len()
}

// Backlog returns the number of jobs that would precede a new class-k
// arrival: buffered jobs of class >= k (higher classes dispatch first,
// equal classes are FIFO ahead of it) plus the running job. This is the
// admission.State view policies read at decision time, matching the
// federation Member.Backlog semantics.
func (s *Scheduler) Backlog(class int) int {
	if class < 0 {
		class = 0
	}
	var n int
	for k := class; k < len(s.buffers); k++ {
		n += s.buffers[k].Len()
	}
	if s.current != nil {
		n++
	}
	return n
}

// Classes returns the number of priority classes the scheduler serves.
func (s *Scheduler) Classes() int { return s.cfg.Classes }

// RejectedJobs returns the number of admission-shed jobs so far.
func (s *Scheduler) RejectedJobs() int {
	var n int
	for _, r := range s.rejected {
		n += r
	}
	return n
}

// RejectedJobsInClass returns the admission-shed count of one class;
// out-of-range classes report zero.
func (s *Scheduler) RejectedJobsInClass(class int) int {
	if class < 0 || class >= len(s.rejected) {
		return 0
	}
	return s.rejected[class]
}

// Busy reports whether a job is currently in the engine.
func (s *Scheduler) Busy() bool { return s.current != nil }

// SprintBudgetJoules returns the remaining sprint budget (cap when
// sprinting is disabled or unlimited).
func (s *Scheduler) SprintBudgetJoules() float64 {
	if s.cfg.Sprint == nil {
		return 0
	}
	s.updateBudget()
	return s.budget
}

// Sprinting reports whether the sprinter currently has the cluster at high
// frequency.
func (s *Scheduler) Sprinting() bool { return s.sprinting }
