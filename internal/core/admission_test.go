package core

import (
	"reflect"
	"strconv"
	"testing"

	"dias/internal/admission"
	"dias/internal/simtime"
	"dias/internal/trace"
)

// deferAll always answers Defer — the policy a federation spills on; on a
// bare scheduler Arrive must degrade it to a rejection.
type deferAll struct{}

func (deferAll) Name() string { return "defer-all" }
func (deferAll) Admit(simtime.Time, admission.JobInfo, admission.State) admission.Decision {
	return admission.Defer
}

// countingLearner records the completions the scheduler feeds back.
type countingLearner struct {
	admission.Policy
	observed int
}

func (c *countingLearner) Observe(int, float64, float64) { c.observed++ }

// submitBurst schedules n one-partition jobs of the class at one-second
// spacing starting at t=0.
func submitBurst(r *rig, class, n int) {
	for i := 0; i < n; i++ {
		job := simpleJob("j"+strconv.Itoa(i), 1)
		at := simtime.Time(float64(i))
		r.sim.At(at, func() { _ = r.sch.Arrive(class, job) })
	}
}

// TestAdmissionConservation is the core-layer conservation invariant:
// every submitted job produces exactly one record, and each record is
// exactly one of completed, failed or rejected.
func TestAdmissionConservation(t *testing.T) {
	qd, err := admission.NewQueueDepth(admission.QueueDepthConfig{MaxBacklog: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PolicyNP(1)
	cfg.Admission = qd
	// 10-second tasks at one-second arrivals: the backlog cap bites fast.
	r := newRig(t, 1, 10, cfg)
	const n = 20
	submitBurst(r, 0, n)
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != n {
		t.Fatalf("%d records for %d submissions", len(recs), n)
	}
	var completed, rejected int
	for _, rec := range recs {
		switch {
		case rec.Rejected && rec.Failed:
			t.Fatalf("job %s both rejected and failed", rec.Name)
		case rec.Rejected:
			rejected++
			if rec.ResponseSec != 0 || rec.QueueSec != 0 || rec.ExecSec != 0 {
				t.Errorf("rejected %s has latencies %g/%g/%g", rec.Name, rec.ResponseSec, rec.QueueSec, rec.ExecSec)
			}
			if rec.ArrivedAt != rec.FinishedAt {
				t.Errorf("rejected %s spans %v..%v", rec.Name, rec.ArrivedAt, rec.FinishedAt)
			}
		default:
			completed++
		}
	}
	if rejected == 0 {
		t.Fatal("backlog cap never rejected — test is not exercising admission")
	}
	if completed+rejected != n {
		t.Fatalf("completed %d + rejected %d != %d", completed, rejected, n)
	}
	if got := r.sch.RejectedJobs(); got != rejected {
		t.Errorf("RejectedJobs() = %d, want %d", got, rejected)
	}
	if got := r.sch.RejectedJobsInClass(0); got != rejected {
		t.Errorf("RejectedJobsInClass(0) = %d, want %d", got, rejected)
	}
}

// TestNilAdmissionMatchesAlwaysAdmit backs the facade's compatibility
// claim: a nil admission policy and AlwaysAdmit produce identical records.
func TestNilAdmissionMatchesAlwaysAdmit(t *testing.T) {
	run := func(p admission.Policy) []JobRecord {
		cfg := PolicyNP(2)
		cfg.Admission = p
		r := newRig(t, 2, 5, cfg)
		submitBurst(r, 0, 8)
		r.sim.At(3, func() { _ = r.sch.Arrive(1, simpleJob("high", 2)) })
		r.sim.Run()
		return r.sch.Records()
	}
	if !reflect.DeepEqual(run(nil), run(admission.AlwaysAdmit{})) {
		t.Fatal("records differ between nil admission and AlwaysAdmit")
	}
}

// TestDeferDegradesToReject: Arrive has nowhere to re-route, so a Defer
// verdict must shed the job (with a record), not drop or buffer it.
func TestDeferDegradesToReject(t *testing.T) {
	cfg := PolicyNP(1)
	cfg.Admission = deferAll{}
	tl := &trace.Log{}
	cfg.Trace = tl
	r := newRig(t, 1, 10, cfg)
	submitBurst(r, 0, 3)
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	for _, rec := range recs {
		if !rec.Rejected {
			t.Errorf("job %s not rejected", rec.Name)
		}
	}
	if got := len(tl.Filter(trace.Reject)); got != 3 {
		t.Errorf("%d reject trace events", got)
	}
	if got := len(tl.Filter(trace.Arrival)); got != 0 {
		t.Errorf("%d arrival trace events for fully-shed stream", got)
	}
}

// TestOfferDeferLeavesNoTrace: a Defer answered to Offer is the caller's
// to resolve — the scheduler must not have recorded or buffered anything.
func TestOfferDeferLeavesNoTrace(t *testing.T) {
	cfg := PolicyNP(1)
	cfg.Admission = deferAll{}
	r := newRig(t, 1, 10, cfg)
	r.sim.At(0, func() {
		dec, err := r.sch.Offer(0, simpleJob("j", 1))
		if err != nil {
			t.Error(err)
		}
		if dec != admission.Defer {
			t.Errorf("decision = %v", dec)
		}
	})
	r.sim.Run()
	if got := len(r.sch.Records()); got != 0 {
		t.Errorf("%d records after deferred Offer", got)
	}
	if got := r.sch.QueuedJobs(); got != 0 {
		t.Errorf("%d queued after deferred Offer", got)
	}
}

// TestAdmissionLearnerFeed: completions (and only completions) reach a
// policy implementing admission.Learner.
func TestAdmissionLearnerFeed(t *testing.T) {
	cl := &countingLearner{Policy: admission.AlwaysAdmit{}}
	cfg := PolicyNP(1)
	cfg.Admission = cl
	r := newRig(t, 1, 5, cfg)
	submitBurst(r, 0, 4)
	r.sim.Run()
	if cl.observed != 4 {
		t.Fatalf("learner observed %d of 4 completions", cl.observed)
	}
}

// TestSchedulerBacklogView: the admission.State view the scheduler exposes
// matches the federation's Backlog semantics (jobs of class >= k plus the
// running job).
func TestSchedulerBacklogView(t *testing.T) {
	r := newRig(t, 1, 100, PolicyNP(2))
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("running", 1)) })
	r.sim.At(1, func() { _ = r.sch.Arrive(0, simpleJob("low-q", 1)) })
	r.sim.At(2, func() { _ = r.sch.Arrive(1, simpleJob("high-q", 1)) })
	r.sim.At(3, func() {
		// Buffered: one low, one high; running: one.
		if got := r.sch.Backlog(0); got != 3 {
			t.Errorf("Backlog(0) = %d, want 3", got)
		}
		if got := r.sch.Backlog(1); got != 2 {
			t.Errorf("Backlog(1) = %d, want 2 (high-q + running)", got)
		}
		if !r.sch.Busy() {
			t.Error("Busy() = false with a job in the engine")
		}
	})
	r.sim.Run()
}
