package core

import (
	"testing"

	"dias/internal/simtime"
)

// countingObserver records every StateObserver callback in order.
type countingObserver struct {
	queued   []int
	dequeued []int
	busyLog  []bool
}

func (o *countingObserver) JobQueued(class int)   { o.queued = append(o.queued, class) }
func (o *countingObserver) JobDequeued(class int) { o.dequeued = append(o.dequeued, class) }
func (o *countingObserver) BusyChanged(busy bool) { o.busyLog = append(o.busyLog, busy) }

// TestStateObserverCounts checks that queue and occupancy notifications
// balance over a full run: every arrival is queued once, every queued job
// is dequeued once, busy flips alternate, and the run ends idle.
func TestStateObserverCounts(t *testing.T) {
	r := newRig(t, 2, 1, PolicyNP(3))
	obs := &countingObserver{}
	r.sch.SetObserver(obs)
	job := simpleJob("obs", 2)
	arrivals := []int{0, 2, 1, 1, 0, 2}
	for i, class := range arrivals {
		class := class
		r.sim.At(simtime.Time(float64(i)*0.3), func() {
			if err := r.sch.Arrive(class, job); err != nil {
				t.Errorf("arrive class %d: %v", class, err)
			}
		})
	}
	r.sim.Run()
	if got, want := len(obs.queued), len(arrivals); got != want {
		t.Fatalf("JobQueued fired %d times, want %d", got, want)
	}
	if got, want := len(obs.dequeued), len(arrivals); got != want {
		t.Fatalf("JobDequeued fired %d times, want %d", got, want)
	}
	// Non-preemptive: queued classes arrive in submission order; dequeued
	// classes follow priority order among what was buffered.
	for i, class := range arrivals {
		if obs.queued[i] != class {
			t.Fatalf("JobQueued[%d] = %d, want %d", i, obs.queued[i], class)
		}
	}
	if len(obs.busyLog)%2 != 0 {
		t.Fatalf("busy transitions %d not paired", len(obs.busyLog))
	}
	for i, busy := range obs.busyLog {
		if want := i%2 == 0; busy != want {
			t.Fatalf("busy transition %d = %v, want %v", i, busy, want)
		}
	}
	if r.sch.Busy() || r.sch.QueuedJobs() != 0 {
		t.Fatalf("scheduler not drained: busy=%v queued=%d", r.sch.Busy(), r.sch.QueuedJobs())
	}
}

// TestStateObserverEviction checks the preemptive path: an eviction
// re-queues the victim (an extra JobQueued and a matching extra
// JobDequeued when it re-dispatches) and flips occupancy around the
// eviction.
func TestStateObserverEviction(t *testing.T) {
	r := newRig(t, 2, 5, PolicyP(2))
	obs := &countingObserver{}
	r.sch.SetObserver(obs)
	low := simpleJob("low", 2)
	high := simpleJob("high", 2)
	r.sim.At(0, func() {
		if err := r.sch.Arrive(0, low); err != nil {
			t.Errorf("low arrive: %v", err)
		}
	})
	// The high job lands mid-run of the low one and evicts it.
	r.sim.At(2, func() {
		if err := r.sch.Arrive(1, high); err != nil {
			t.Errorf("high arrive: %v", err)
		}
	})
	r.sim.Run()
	if got := len(r.sch.Records()); got != 2 {
		t.Fatalf("completed %d jobs, want 2", got)
	}
	// 2 arrivals + 1 eviction re-queue; each queued job dequeued once.
	if got := len(obs.queued); got != 3 {
		t.Fatalf("JobQueued fired %d times, want 3 (2 arrivals + 1 re-queue)", got)
	}
	if got := len(obs.dequeued); got != 3 {
		t.Fatalf("JobDequeued fired %d times, want 3", got)
	}
	// Queued order: low arrival, high arrival, low re-queue.
	want := []int{0, 1, 0}
	for i, class := range want {
		if obs.queued[i] != class {
			t.Fatalf("JobQueued[%d] = %d, want %d", i, obs.queued[i], class)
		}
	}
	// Occupancy: low on, eviction off, high on, high done off, low on,
	// low done off.
	if got := len(obs.busyLog); got != 6 {
		t.Fatalf("busy transitions %d, want 6", got)
	}
}
