package core

import (
	"errors"
	"fmt"
)

// AccuracyCurve maps a map-task drop ratio θ to the expected relative
// error in percent — the offline-profiled Figure 6 curve.
type AccuracyCurve func(theta float64) float64

// KnobConstraints bound the deflator's drop-ratio search (§5.2.1).
type KnobConstraints struct {
	// MaxErrorPct[k] is class k's accuracy-loss tolerance in percent
	// (0 for classes that must stay exact, e.g. the top priority).
	MaxErrorPct []float64
	// MaxTopMeanResponseSec caps the predicted mean response time of the
	// top class; zero disables the latency constraint.
	MaxTopMeanResponseSec float64
}

// Choice is one latency-accuracy point of the deflator's search space: a
// per-class drop-ratio vector with its predicted consequences.
type Choice struct {
	// Thetas[k] is the candidate drop ratio of class k.
	Thetas []float64
	// ErrorPct[k] is the accuracy loss curve evaluated at Thetas[k].
	ErrorPct []float64
	// PredictedMeanResponse[k] is the model's mean response time.
	PredictedMeanResponse []float64
	// Feasible reports whether all constraints hold.
	Feasible bool
}

// EnumerateChoices walks the drop-ratio grid (ascending) and evaluates, for
// each grid value g, the vector θk = min(g, maxAccuracyFeasible(k)): every
// class drops as much as g allows within its own accuracy tolerance. The
// predict callback maps a θ vector to per-class mean response times (the
// §4 model + priority queue); it may be nil to skip latency prediction.
//
// This is the paper's procedure: the accuracy targets fix per-class
// ceilings from the profiled error curve, and the latency model screens
// the remaining candidates (§5.2.1, §5.3).
func EnumerateChoices(grid []float64, curve AccuracyCurve, cons KnobConstraints,
	predict func(thetas []float64) ([]float64, error)) ([]Choice, error) {
	if len(grid) == 0 {
		return nil, errors.New("core: empty drop-ratio grid")
	}
	if curve == nil {
		return nil, errors.New("core: nil accuracy curve")
	}
	if len(cons.MaxErrorPct) == 0 {
		return nil, errors.New("core: no accuracy tolerances")
	}
	k := len(cons.MaxErrorPct)
	for _, g := range grid {
		if g < 0 || g >= 1 {
			return nil, fmt.Errorf("core: grid value %g out of [0,1)", g)
		}
	}
	// Per-class ceiling: the largest grid θ whose error fits the tolerance.
	ceil := make([]float64, k)
	for c := 0; c < k; c++ {
		ceil[c] = 0
		for _, g := range grid {
			if curve(g) <= cons.MaxErrorPct[c] && g > ceil[c] {
				ceil[c] = g
			}
		}
	}
	choices := make([]Choice, 0, len(grid))
	for _, g := range grid {
		ch := Choice{
			Thetas:   make([]float64, k),
			ErrorPct: make([]float64, k),
			Feasible: true,
		}
		for c := 0; c < k; c++ {
			th := g
			if th > ceil[c] {
				th = ceil[c]
			}
			ch.Thetas[c] = th
			ch.ErrorPct[c] = curve(th)
			if ch.ErrorPct[c] > cons.MaxErrorPct[c]+1e-9 {
				ch.Feasible = false
			}
		}
		if predict != nil {
			resp, err := predict(ch.Thetas)
			if err != nil {
				return nil, fmt.Errorf("predicting response for θ=%v: %w", ch.Thetas, err)
			}
			if len(resp) != k {
				return nil, fmt.Errorf("core: predictor returned %d classes, want %d", len(resp), k)
			}
			ch.PredictedMeanResponse = resp
			if cons.MaxTopMeanResponseSec > 0 && resp[k-1] > cons.MaxTopMeanResponseSec {
				ch.Feasible = false
			}
		}
		choices = append(choices, ch)
	}
	return choices, nil
}

// SelectDropRatios returns the smallest feasible drop-ratio vector: the
// minimum approximation that satisfies the accuracy tolerances and keeps
// the top class within its latency cap, per the paper's "determine a
// minimum value for the drop ratio" guidance (§4.3).
func SelectDropRatios(grid []float64, curve AccuracyCurve, cons KnobConstraints,
	predict func(thetas []float64) ([]float64, error)) ([]float64, error) {
	choices, err := EnumerateChoices(grid, curve, cons, predict)
	if err != nil {
		return nil, err
	}
	for _, ch := range choices {
		if ch.Feasible {
			return ch.Thetas, nil
		}
	}
	return nil, errors.New("core: no feasible drop-ratio vector under the given constraints")
}

// StaticDeflator serves fixed per-class drop-ratio vectors through the
// Deflator interface — the paper's offline-selected thresholds in a form
// the deflation-policy registry can construct without a simulation handle
// (unlike AdaptiveDeflator, it never adjusts and ignores completions).
type StaticDeflator struct {
	ratios [][]float64
}

// NewStaticDeflator builds a deflator returning ratios[k] for class k
// (nil entries mean no dropping). Every ratio must lie in [0, 1).
func NewStaticDeflator(ratios [][]float64) (*StaticDeflator, error) {
	if len(ratios) == 0 {
		return nil, errors.New("core: static deflator has no classes")
	}
	for k, rs := range ratios {
		for s, r := range rs {
			if r < 0 || r >= 1 {
				return nil, fmt.Errorf("core: class %d stage %d drop ratio %g out of [0,1)", k, s, r)
			}
		}
	}
	return &StaticDeflator{ratios: ratios}, nil
}

// DropRatios implements Deflator.
func (d *StaticDeflator) DropRatios(class int) []float64 {
	if class < 0 || class >= len(d.ratios) {
		return nil
	}
	return d.ratios[class]
}

// Observe implements Deflator; a static deflator never adapts.
func (d *StaticDeflator) Observe(JobRecord) {}
