package core

// Elastic capacity: a ScalePolicy decides how many nodes the cluster
// should run from periodic load signals, and the Autoscaler applies the
// decision by commissioning and decommissioning nodes mid-run. Scale-in
// drains gracefully (running tasks finish before a node powers off), and
// both shipped policies refuse to scale in while the sprinter holds the
// cluster at high frequency — sprinting means the scheduler is already
// fighting a latency deadline, the worst moment to shed capacity.

import (
	"errors"
	"fmt"

	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// ScaleSignals is the load snapshot a ScalePolicy decides from, gathered
// at each autoscaler tick.
type ScaleSignals struct {
	// QueuedJobs is the scheduler backlog (buffered, not dispatched).
	QueuedJobs int
	// Busy reports a job currently in the engine.
	Busy bool
	// CommissionedNodes is the capacity currently in service; MinNodes and
	// MaxNodes bound what the policy may ask for.
	CommissionedNodes int
	MinNodes          int
	MaxNodes          int
	// Utilization is the instantaneous busy-slot fraction.
	Utilization float64
	// EWMAResponseSec smooths the response times of recent completions
	// (zero until the first completion; Completions says how many).
	EWMAResponseSec float64
	Completions     int
	// Sprinting reports the cluster at high frequency right now.
	Sprinting bool
}

// ScalePolicy turns load signals into a desired node count. The
// autoscaler clamps the answer into [MinNodes, MaxNodes], so policies may
// freely return CommissionedNodes±Step.
type ScalePolicy interface {
	Name() string
	TargetNodes(sig ScaleSignals) int
}

// BacklogScalePolicy scales on queue depth: more than ScaleOutAbove
// buffered jobs adds Step nodes, fewer than ScaleInBelow removes Step
// (never while sprinting).
type BacklogScalePolicy struct {
	// ScaleOutAbove and ScaleInBelow are backlog thresholds; the band
	// between them is hysteresis. ScaleOutAbove must exceed ScaleInBelow.
	ScaleOutAbove int
	ScaleInBelow  int
	// Step is the node count added or removed per decision (>= 1).
	Step int
}

// Name implements ScalePolicy.
func (p BacklogScalePolicy) Name() string { return "backlog" }

// TargetNodes implements ScalePolicy.
func (p BacklogScalePolicy) TargetNodes(sig ScaleSignals) int {
	switch {
	case sig.QueuedJobs > p.ScaleOutAbove:
		return sig.CommissionedNodes + p.Step
	case sig.QueuedJobs < p.ScaleInBelow && !sig.Sprinting:
		return sig.CommissionedNodes - p.Step
	}
	return sig.CommissionedNodes
}

func (p BacklogScalePolicy) validate() error {
	if p.Step < 1 {
		return fmt.Errorf("core: backlog policy step %d", p.Step)
	}
	if p.ScaleOutAbove <= p.ScaleInBelow {
		return fmt.Errorf("core: backlog thresholds out %d <= in %d leave no hysteresis band",
			p.ScaleOutAbove, p.ScaleInBelow)
	}
	return nil
}

// LatencyScalePolicy scales on smoothed response time against a target:
// EWMA beyond Target*(1+Headroom) adds Step nodes, below Target*(1-Headroom)
// removes Step (never while sprinting, and never before the first
// completion reports a latency at all).
type LatencyScalePolicy struct {
	// TargetSec is the response-time setpoint.
	TargetSec float64
	// Headroom is the relative dead band around the target (e.g. 0.25).
	Headroom float64
	// Step is the node count added or removed per decision (>= 1).
	Step int
}

// Name implements ScalePolicy.
func (p LatencyScalePolicy) Name() string { return "latency" }

// TargetNodes implements ScalePolicy.
func (p LatencyScalePolicy) TargetNodes(sig ScaleSignals) int {
	if sig.Completions == 0 {
		return sig.CommissionedNodes
	}
	switch {
	case sig.EWMAResponseSec > p.TargetSec*(1+p.Headroom):
		return sig.CommissionedNodes + p.Step
	case sig.EWMAResponseSec < p.TargetSec*(1-p.Headroom) && !sig.Sprinting:
		return sig.CommissionedNodes - p.Step
	}
	return sig.CommissionedNodes
}

func (p LatencyScalePolicy) validate() error {
	if p.TargetSec <= 0 {
		return fmt.Errorf("core: latency policy target %g", p.TargetSec)
	}
	if p.Headroom <= 0 || p.Headroom >= 1 {
		return fmt.Errorf("core: latency policy headroom %g out of (0,1)", p.Headroom)
	}
	if p.Step < 1 {
		return fmt.Errorf("core: latency policy step %d", p.Step)
	}
	return nil
}

// AutoscalerConfig parameterizes the controller.
type AutoscalerConfig struct {
	// Policy decides the target node count each tick.
	Policy ScalePolicy
	// MinNodes and MaxNodes bound the commissioned count; MaxNodes must
	// not exceed the cluster's provisioned node count (zero means use it).
	MinNodes int
	MaxNodes int
	// InitialNodes is the commissioned count at start (zero = MaxNodes).
	InitialNodes int
	// IntervalSec is the decision period.
	IntervalSec float64
	// CooldownSec is the minimum virtual time between scale actions
	// (decisions still run every tick; actions inside the cooldown are
	// dropped). Zero means act on every tick.
	CooldownSec float64
	// EWMAAlpha weights the newest completion in the latency smoother
	// (zero = 0.2).
	EWMAAlpha float64
	// HorizonSec stops ticking beyond this virtual time so the event queue
	// drains and the simulation terminates. Required.
	HorizonSec float64
}

// ScaleEvent records one applied scaling action.
type ScaleEvent struct {
	AtSec      float64
	FromNodes  int
	ToNodes    int
	QueuedJobs int
}

// Autoscaler drives elastic capacity on one DiAS stack: every IntervalSec
// of virtual time it snapshots load signals, asks the policy for a target
// node count and commissions/decommissions nodes to meet it. Construct it
// after the scheduler and feed completions to Observe (e.g. from the same
// OnRecord hook the metrics accumulator uses).
type Autoscaler struct {
	sim *simtime.Simulation
	clu *cluster.Cluster
	eng *engine.Engine
	sch *Scheduler
	cfg AutoscalerConfig

	ewma        float64
	completions int
	lastAction  simtime.Time
	acted       bool

	events    []ScaleEvent
	scaleOuts int
	scaleIns  int

	// tickFn is the pre-bound tick callback: the self-re-arming loop
	// schedules it for the lifetime of the run without allocating a
	// method-value closure per tick.
	tickFn func()
}

// NewAutoscaler validates the config, sets the initial commissioned count
// (decommissioning highest-index nodes first) and arms the tick loop.
func NewAutoscaler(sim *simtime.Simulation, clu *cluster.Cluster, eng *engine.Engine, sch *Scheduler, cfg AutoscalerConfig) (*Autoscaler, error) {
	if sim == nil || clu == nil || eng == nil || sch == nil {
		return nil, errors.New("core: autoscaler nil dependency")
	}
	if cfg.Policy == nil {
		return nil, errors.New("core: autoscaler needs a scale policy")
	}
	type validator interface{ validate() error }
	if v, ok := cfg.Policy.(validator); ok {
		if err := v.validate(); err != nil {
			return nil, err
		}
	}
	provisioned := clu.Config().Nodes
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = provisioned
	}
	if cfg.MaxNodes > provisioned {
		return nil, fmt.Errorf("core: autoscaler max %d exceeds provisioned %d nodes", cfg.MaxNodes, provisioned)
	}
	if cfg.MinNodes < 1 || cfg.MinNodes > cfg.MaxNodes {
		return nil, fmt.Errorf("core: autoscaler bounds min %d max %d", cfg.MinNodes, cfg.MaxNodes)
	}
	if cfg.InitialNodes == 0 {
		cfg.InitialNodes = cfg.MaxNodes
	}
	if cfg.InitialNodes < cfg.MinNodes || cfg.InitialNodes > cfg.MaxNodes {
		return nil, fmt.Errorf("core: autoscaler initial %d outside [%d,%d]", cfg.InitialNodes, cfg.MinNodes, cfg.MaxNodes)
	}
	if cfg.IntervalSec <= 0 {
		return nil, fmt.Errorf("core: autoscaler interval %g", cfg.IntervalSec)
	}
	if cfg.CooldownSec < 0 {
		return nil, fmt.Errorf("core: autoscaler cooldown %g", cfg.CooldownSec)
	}
	if cfg.HorizonSec <= 0 {
		return nil, errors.New("core: autoscaler needs a positive horizon")
	}
	if cfg.EWMAAlpha == 0 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.EWMAAlpha < 0 || cfg.EWMAAlpha > 1 {
		return nil, fmt.Errorf("core: autoscaler EWMA alpha %g out of (0,1]", cfg.EWMAAlpha)
	}
	a := &Autoscaler{sim: sim, clu: clu, eng: eng, sch: sch, cfg: cfg}
	// Park the nodes above the initial count before any work arrives.
	for n := provisioned - 1; n >= cfg.InitialNodes; n-- {
		if err := eng.DecommissionNode(n); err != nil {
			return nil, fmt.Errorf("core: parking node %d: %w", n, err)
		}
	}
	a.tickFn = a.tick
	sim.After(simtime.Duration(cfg.IntervalSec), a.tickFn)
	return a, nil
}

// Observe feeds one completed job into the latency smoother. Failed and
// rejected jobs are excluded: their response times describe aborts and
// sheds, not service.
func (a *Autoscaler) Observe(rec JobRecord) {
	if rec.Failed || rec.Rejected {
		return
	}
	if a.completions == 0 {
		a.ewma = rec.ResponseSec
	} else {
		a.ewma = a.cfg.EWMAAlpha*rec.ResponseSec + (1-a.cfg.EWMAAlpha)*a.ewma
	}
	a.completions++
}

// tick runs one decision round and re-arms itself while inside the
// horizon. A tick that finds the simulation otherwise empty (no pending
// events: the tick callback itself is already retired) disarms instead —
// the workload has drained and re-arming would only stretch the measured
// makespan with idle ticks.
func (a *Autoscaler) tick() {
	if a.sim.Pending() == 0 {
		return
	}
	now := a.sim.Now()
	sig := ScaleSignals{
		QueuedJobs:        a.sch.QueuedJobs(),
		Busy:              a.sch.Busy(),
		CommissionedNodes: a.clu.CommissionedNodes(),
		MinNodes:          a.cfg.MinNodes,
		MaxNodes:          a.cfg.MaxNodes,
		Utilization:       a.clu.Utilization(),
		EWMAResponseSec:   a.ewma,
		Completions:       a.completions,
		Sprinting:         a.clu.Sprinting(),
	}
	target := a.cfg.Policy.TargetNodes(sig)
	if target < a.cfg.MinNodes {
		target = a.cfg.MinNodes
	}
	if target > a.cfg.MaxNodes {
		target = a.cfg.MaxNodes
	}
	if target != sig.CommissionedNodes && a.cooledDown(now) {
		a.apply(sig.CommissionedNodes, target, sig.QueuedJobs)
	}
	if next := now.Add(simtime.Duration(a.cfg.IntervalSec)); next.Seconds() <= a.cfg.HorizonSec {
		a.sim.At(next, a.tickFn)
	}
}

func (a *Autoscaler) cooledDown(now simtime.Time) bool {
	return !a.acted || now.Sub(a.lastAction).Seconds() >= a.cfg.CooldownSec
}

// apply commissions (lowest offline index first) or decommissions
// (highest commissioned index first) nodes to move from -> to.
func (a *Autoscaler) apply(from, to, queued int) {
	provisioned := a.clu.Config().Nodes
	have := from
	if to > have {
		for n := 0; n < provisioned && have < to; n++ {
			if !a.clu.NodeOffline(n) {
				continue
			}
			if err := a.eng.CommissionNode(n); err != nil {
				panic(fmt.Sprintf("core: autoscaler commission node %d: %v", n, err))
			}
			have++
		}
		a.scaleOuts++
	} else {
		for n := provisioned - 1; n >= 0 && have > to; n-- {
			if a.clu.NodeOffline(n) {
				continue
			}
			if err := a.eng.DecommissionNode(n); err != nil {
				panic(fmt.Sprintf("core: autoscaler decommission node %d: %v", n, err))
			}
			have--
		}
		a.scaleIns++
	}
	now := a.sim.Now()
	a.lastAction, a.acted = now, true
	a.events = append(a.events, ScaleEvent{
		AtSec: now.Seconds(), FromNodes: from, ToNodes: to, QueuedJobs: queued,
	})
}

// Events returns the applied scaling actions in order. The slice is
// shared; callers must not mutate it.
func (a *Autoscaler) Events() []ScaleEvent { return a.events }

// ScaleOuts and ScaleIns count applied actions in each direction.
func (a *Autoscaler) ScaleOuts() int { return a.scaleOuts }
func (a *Autoscaler) ScaleIns() int  { return a.scaleIns }

// EWMAResponseSec returns the current smoothed response time.
func (a *Autoscaler) EWMAResponseSec() float64 { return a.ewma }
