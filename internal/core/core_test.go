package core

import (
	"math"
	"strconv"
	"testing"

	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/simtime"
	"dias/internal/trace"
)

// rig bundles the full simulated stack under a DiAS scheduler.
type rig struct {
	sim *simtime.Simulation
	clu *cluster.Cluster
	eng *engine.Engine
	sch *Scheduler
}

// newRig builds a stack with noise-free unit-cost tasks: a job with n
// input partitions on `slots` slots takes ceil(n/slots)*taskSec plus
// nothing else.
func newRig(t *testing.T, slots int, taskSec float64, cfg Config) *rig {
	t.Helper()
	sim := simtime.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = slots
	ccfg.CoresPerNode = 1
	clu, err := cluster.New(sim, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: taskSec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New(sim, clu, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{sim: sim, clu: clu, eng: eng, sch: sch}
}

// simpleJob builds a one-stage Result job with n empty partitions.
func simpleJob(name string, n int) *engine.Job {
	input := make(engine.Dataset, n)
	for i := range input {
		input[i] = engine.Partition{{Key: "k" + strconv.Itoa(i), Value: 1.0}}
	}
	return &engine.Job{Name: name, Input: input, Stages: []engine.Stage{{Kind: engine.Result}}}
}

// twoStageJob builds map+reduce with n map partitions and r reducers.
func twoStageJob(name string, n, r int) *engine.Job {
	input := make(engine.Dataset, n)
	for i := range input {
		input[i] = engine.Partition{{Key: "k" + strconv.Itoa(i), Value: 1.0}}
	}
	return &engine.Job{
		Name:  name,
		Input: input,
		Stages: []engine.Stage{
			{Kind: engine.ShuffleMap, OutPartitions: r},
			{Kind: engine.Result, Deps: []int{0}},
		},
	}
}

func TestConfigValidation(t *testing.T) {
	sim := simtime.New()
	clu, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero classes", Config{Classes: 0}},
		{"drop sets mismatch", Config{Classes: 2, DropRatios: [][]float64{{0.1}}}},
		{"drop out of range", Config{Classes: 1, DropRatios: [][]float64{{1.0}}}},
		{"sprint timeouts mismatch", Config{Classes: 2, Sprint: &SprintPolicy{TimeoutSec: []float64{1}, BudgetJoules: 1, DrainWatts: 1}}},
		{"sprint zero budget", Config{Classes: 1, Sprint: &SprintPolicy{TimeoutSec: []float64{1}, BudgetJoules: 0, DrainWatts: 1}}},
		{"finite budget no drain", Config{Classes: 1, Sprint: &SprintPolicy{TimeoutSec: []float64{1}, BudgetJoules: 10}}},
		{"preemptive sprint", Config{Classes: 1, Preemptive: true, Sprint: &SprintPolicy{TimeoutSec: []float64{1}, BudgetJoules: 10, DrainWatts: 1}}},
	}
	for _, c := range cases {
		if _, err := New(sim, clu, eng, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := New(nil, clu, eng, PolicyNP(1)); err == nil {
		t.Error("nil sim accepted")
	}
}

func TestFCFSWithinClass(t *testing.T) {
	r := newRig(t, 1, 10, PolicyNP(1))
	var order []string
	record := func() {
		for _, rec := range r.sch.Records() {
			_ = rec
		}
	}
	_ = record
	r.sim.At(0, func() {
		if err := r.sch.Arrive(0, simpleJob("a", 1)); err != nil {
			t.Error(err)
		}
	})
	r.sim.At(1, func() {
		if err := r.sch.Arrive(0, simpleJob("b", 1)); err != nil {
			t.Error(err)
		}
	})
	r.sim.At(2, func() {
		if err := r.sch.Arrive(0, simpleJob("c", 1)); err != nil {
			t.Error(err)
		}
	})
	r.sim.Run()
	for _, rec := range r.sch.Records() {
		order = append(order, rec.Name)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("completion order = %v", order)
	}
}

func TestPriorityOrderAcrossClasses(t *testing.T) {
	// Jobs queued while one runs: high class must be served before low.
	r := newRig(t, 1, 10, PolicyNP(2))
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("low-running", 1)) })
	r.sim.At(1, func() { _ = r.sch.Arrive(0, simpleJob("low-queued", 1)) })
	r.sim.At(2, func() { _ = r.sch.Arrive(1, simpleJob("high-queued", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Name != "low-running" || recs[1].Name != "high-queued" || recs[2].Name != "low-queued" {
		t.Fatalf("order = %s, %s, %s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
}

func TestNonPreemptiveNeverEvicts(t *testing.T) {
	r := newRig(t, 1, 10, PolicyNP(2))
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("low", 1)) })
	r.sim.At(1, func() { _ = r.sch.Arrive(1, simpleJob("high", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	// Low finishes first (at 10), high waits then runs (finishes 20).
	if recs[0].Name != "low" || math.Abs(recs[0].FinishedAt.Seconds()-10) > 1e-9 {
		t.Fatalf("low finished at %v", recs[0].FinishedAt)
	}
	if recs[1].Name != "high" || math.Abs(recs[1].FinishedAt.Seconds()-20) > 1e-9 {
		t.Fatalf("high finished at %v", recs[1].FinishedAt)
	}
	if recs[0].Evictions != 0 || recs[1].Evictions != 0 {
		t.Fatal("evictions under NP")
	}
	if r.eng.WastedSlotSeconds() != 0 {
		t.Fatal("waste under NP")
	}
}

func TestPreemptiveEvictsAndReexecutes(t *testing.T) {
	r := newRig(t, 1, 10, PolicyP(2))
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("low", 1)) })
	r.sim.At(4, func() { _ = r.sch.Arrive(1, simpleJob("high", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	// High runs 4..14; low re-executes from scratch 14..24.
	if recs[0].Name != "high" || math.Abs(recs[0].FinishedAt.Seconds()-14) > 1e-9 {
		t.Fatalf("high finished at %v", recs[0].FinishedAt)
	}
	if recs[1].Name != "low" || math.Abs(recs[1].FinishedAt.Seconds()-24) > 1e-9 {
		t.Fatalf("low finished at %v", recs[1].FinishedAt)
	}
	if recs[1].Evictions != 1 {
		t.Fatalf("low evictions = %d, want 1", recs[1].Evictions)
	}
	// 4 seconds of the first low attempt were wasted.
	if math.Abs(r.eng.WastedSlotSeconds()-4) > 1e-9 {
		t.Fatalf("wasted = %g, want 4", r.eng.WastedSlotSeconds())
	}
	// Response decomposition: low response 24, exec 10 (final attempt),
	// queue 14.
	if math.Abs(recs[1].ResponseSec-24) > 1e-9 || math.Abs(recs[1].ExecSec-10) > 1e-9 || math.Abs(recs[1].QueueSec-14) > 1e-9 {
		t.Fatalf("low decomposition resp=%g exec=%g queue=%g", recs[1].ResponseSec, recs[1].ExecSec, recs[1].QueueSec)
	}
}

func TestPreemptionEqualClassDoesNotEvict(t *testing.T) {
	r := newRig(t, 1, 10, PolicyP(2))
	r.sim.At(0, func() { _ = r.sch.Arrive(1, simpleJob("first", 1)) })
	r.sim.At(1, func() { _ = r.sch.Arrive(1, simpleJob("second", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if recs[0].Name != "first" || recs[0].Evictions != 0 {
		t.Fatalf("first record %+v", recs[0])
	}
}

func TestDADropsLowPriorityOnly(t *testing.T) {
	// DA(0, 0.2) in paper order = thetas{0.2 for low, 0 for high}.
	cfg := PolicyDA([]float64{0.2, 0})
	r := newRig(t, 5, 1, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, twoStageJob("low", 10, 5)) })
	r.sim.At(0.1, func() { _ = r.sch.Arrive(1, twoStageJob("high", 10, 5)) })
	r.sim.Run()
	recs := r.sch.Records()
	for _, rec := range recs {
		switch rec.Name {
		case "low":
			// ⌈10·0.8⌉=8 of 10 map tasks + 5 reduce: dropped 2 of 15.
			if math.Abs(rec.EffectiveDropRatio-2.0/15) > 1e-9 {
				t.Fatalf("low effective drop = %g", rec.EffectiveDropRatio)
			}
		case "high":
			if rec.EffectiveDropRatio != 0 {
				t.Fatalf("high effective drop = %g", rec.EffectiveDropRatio)
			}
		}
	}
}

func TestSprintAfterTimeout(t *testing.T) {
	// One job of 10 s work; sprint timeout 4 s; speedup 2.5.
	// Finish = 4 + 6/2.5 = 6.4 s.
	cfg := Config{
		Classes: 1,
		Sprint: &SprintPolicy{
			TimeoutSec:   []float64{4},
			BudgetJoules: math.Inf(1),
		},
	}
	r := newRig(t, 1, 10, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("j", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if math.Abs(recs[0].FinishedAt.Seconds()-6.4) > 1e-9 {
		t.Fatalf("finished at %v, want 6.4", recs[0].FinishedAt)
	}
	if r.clu.Sprinting() {
		t.Fatal("cluster still sprinting after job end")
	}
}

func TestSprintOnlyConfiguredClasses(t *testing.T) {
	cfg := Config{
		Classes: 2,
		Sprint: &SprintPolicy{
			TimeoutSec:   []float64{-1, 0}, // low never sprints, high immediately
			BudgetJoules: math.Inf(1),
		},
	}
	r := newRig(t, 1, 10, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("low", 1)) })
	r.sim.At(12, func() { _ = r.sch.Arrive(1, simpleJob("high", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	// Low runs unsprinted: finishes at 10. High sprints whole run: 12+4=16.
	if math.Abs(recs[0].FinishedAt.Seconds()-10) > 1e-9 {
		t.Fatalf("low finished at %v", recs[0].FinishedAt)
	}
	if math.Abs(recs[1].FinishedAt.Seconds()-16) > 1e-9 {
		t.Fatalf("high finished at %v, want 16", recs[1].FinishedAt)
	}
}

func TestSprintBudgetDepletes(t *testing.T) {
	// Budget 90 J at 30 W drain = 3 s of sprinting. Job: 20 s of work,
	// sprint from t=0: 3 s sprinted does 7.5 work, remaining 12.5 at
	// speed 1 => finish at 15.5.
	cfg := Config{
		Classes: 1,
		Sprint: &SprintPolicy{
			TimeoutSec:   []float64{0},
			BudgetJoules: 90,
			DrainWatts:   30,
		},
	}
	r := newRig(t, 1, 20, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("j", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if math.Abs(recs[0].FinishedAt.Seconds()-15.5) > 1e-9 {
		t.Fatalf("finished at %v, want 15.5", recs[0].FinishedAt)
	}
	if b := r.sch.SprintBudgetJoules(); b > 1e-9 {
		t.Fatalf("budget = %g, want 0", b)
	}
}

func TestSprintBudgetReplenishes(t *testing.T) {
	// Deplete 90 J over one job, then idle 9 s at 10 W replenish = 90 J
	// available again for the next job.
	cfg := Config{
		Classes: 1,
		Sprint: &SprintPolicy{
			TimeoutSec:     []float64{0},
			BudgetJoules:   90,
			DrainWatts:     30,
			ReplenishWatts: 10,
		},
	}
	r := newRig(t, 1, 20, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("a", 1)) })
	// First job finishes at 15.5 (see depletion test). Arrive 9 s later.
	r.sim.At(24.5, func() { _ = r.sch.Arrive(0, simpleJob("b", 1)) })
	r.sim.Run()
	recs := r.sch.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	// Second job: 3 s sprint (7.5 work) + 12.5 s base = 15.5 s again.
	gotExec := recs[1].ExecSec
	if math.Abs(gotExec-15.5) > 1e-9 {
		t.Fatalf("second job exec = %g, want 15.5", gotExec)
	}
}

func TestSprintTimerCancelledOnEarlyCompletion(t *testing.T) {
	// Job takes 5 s; timeout 100 s: the pending sprint must not leak onto
	// the next job's timeline.
	cfg := Config{
		Classes: 1,
		Sprint: &SprintPolicy{
			TimeoutSec:   []float64{100},
			BudgetJoules: math.Inf(1),
		},
	}
	r := newRig(t, 1, 5, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("quick", 1)) })
	r.sim.Run()
	if r.clu.Sprinting() {
		t.Fatal("sprinting after quick job")
	}
	if got := r.sim.Now().Seconds(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("sim drained at %g, want 5 (no stray events)", got)
	}
}

func TestArriveValidation(t *testing.T) {
	r := newRig(t, 1, 1, PolicyNP(2))
	if err := r.sch.Arrive(2, simpleJob("x", 1)); err == nil {
		t.Fatal("class out of range accepted")
	}
	if err := r.sch.Arrive(-1, simpleJob("x", 1)); err == nil {
		t.Fatal("negative class accepted")
	}
	if err := r.sch.Arrive(0, nil); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestIntrospection(t *testing.T) {
	r := newRig(t, 1, 10, PolicyNP(1))
	if r.sch.Busy() || r.sch.QueuedJobs() != 0 {
		t.Fatal("fresh scheduler not idle")
	}
	r.sim.At(0, func() {
		_ = r.sch.Arrive(0, simpleJob("a", 1))
		_ = r.sch.Arrive(0, simpleJob("b", 1))
		if !r.sch.Busy() {
			t.Error("not busy after dispatch")
		}
		if r.sch.QueuedJobs() != 1 {
			t.Errorf("queued = %d, want 1", r.sch.QueuedJobs())
		}
	})
	r.sim.Run()
	if r.sch.Busy() || r.sch.QueuedJobs() != 0 {
		t.Fatal("scheduler not idle after drain")
	}
}

func TestKeepOutputs(t *testing.T) {
	cfg := PolicyNP(1)
	cfg.KeepOutputs = true
	r := newRig(t, 1, 1, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("a", 3)) })
	r.sim.Run()
	if len(r.sch.Records()[0].Output) != 3 {
		t.Fatalf("output records = %d, want 3", len(r.sch.Records()[0].Output))
	}
	// Without KeepOutputs the record drops the data.
	r2 := newRig(t, 1, 1, PolicyNP(1))
	r2.sim.At(0, func() { _ = r2.sch.Arrive(0, simpleJob("a", 3)) })
	r2.sim.Run()
	if r2.sch.Records()[0].Output != nil {
		t.Fatal("output kept without KeepOutputs")
	}
}

func TestSchedulerTracing(t *testing.T) {
	log := &trace.Log{}
	cfg := PolicyP(2)
	cfg.Trace = log
	r := newRig(t, 1, 10, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("low", 1)) })
	r.sim.At(4, func() { _ = r.sch.Arrive(1, simpleJob("high", 1)) })
	r.sim.Run()
	s := log.Summarize()
	if s.ByKind[trace.Arrival] != 2 || s.ByKind[trace.Complete] != 2 {
		t.Fatalf("arrivals/completes = %v", s.ByKind)
	}
	if s.ByKind[trace.Evict] != 1 || s.EvictionsByClass[0] != 1 {
		t.Fatalf("evictions = %v / %v", s.ByKind, s.EvictionsByClass)
	}
	// Low is dispatched twice (original + re-execution).
	lowTL := log.JobTimeline("low")
	var dispatches int
	for _, e := range lowTL {
		if e.Kind == trace.Dispatch {
			dispatches++
		}
	}
	if dispatches != 2 {
		t.Fatalf("low dispatched %d times, want 2", dispatches)
	}
}

func TestSchedulerTracesSprint(t *testing.T) {
	log := &trace.Log{}
	cfg := Config{
		Classes: 1,
		Sprint:  &SprintPolicy{TimeoutSec: []float64{4}, BudgetJoules: math.Inf(1)},
		Trace:   log,
	}
	r := newRig(t, 1, 10, cfg)
	r.sim.At(0, func() { _ = r.sch.Arrive(0, simpleJob("j", 1)) })
	r.sim.Run()
	// Sprint runs from t=4 until completion at 6.4.
	if got := log.SprintSeconds(r.sim.Now().Seconds()); math.Abs(got-2.4) > 1e-9 {
		t.Fatalf("traced sprint seconds = %g, want 2.4", got)
	}
}

// --- Deflator knob search --------------------------------------------------

// fig6Curve approximates the paper's accuracy curve: 8.5% at θ=0.1, 15% at
// 0.2, 32% at 0.4.
func fig6Curve(theta float64) float64 {
	switch {
	case theta <= 0:
		return 0
	case theta <= 0.1:
		return 85 * theta
	case theta <= 0.2:
		return 8.5 + 65*(theta-0.1)
	default:
		return 15 + 85*(theta-0.2)
	}
}

func TestSelectDropRatiosPaperScenario(t *testing.T) {
	// §5.2.1: tolerate 30% error on low, 0% on high; keep high-priority
	// mean response under a cap the model says DA(0,20) meets.
	grid := []float64{0, 0.1, 0.2, 0.4}
	predict := func(thetas []float64) ([]float64, error) {
		// Stylized model: dropping low-priority work shortens the
		// low-class job the high class may wait behind.
		low := 300 * (1 - thetas[0])
		high := 40 + 100*(1-thetas[0])
		return []float64{low, high}, nil
	}
	cons := KnobConstraints{
		MaxErrorPct:           []float64{30, 0},
		MaxTopMeanResponseSec: 125,
	}
	thetas, err := SelectDropRatios(grid, fig6Curve, cons, predict)
	if err != nil {
		t.Fatal(err)
	}
	// θ=0.1 gives high = 130 > 125; θ=0.2 gives 120 <= 125. Low tolerance
	// 30% admits up to θ=0.2 (15%) but not 0.4 (32%).
	if math.Abs(thetas[0]-0.2) > 1e-12 || thetas[1] != 0 {
		t.Fatalf("thetas = %v, want [0.2 0]", thetas)
	}
}

func TestSelectDropRatiosInfeasible(t *testing.T) {
	grid := []float64{0, 0.1}
	cons := KnobConstraints{
		MaxErrorPct:           []float64{5, 0},
		MaxTopMeanResponseSec: 1,
	}
	predict := func([]float64) ([]float64, error) { return []float64{100, 100}, nil }
	if _, err := SelectDropRatios(grid, fig6Curve, cons, predict); err == nil {
		t.Fatal("infeasible constraints accepted")
	}
}

func TestEnumerateChoices(t *testing.T) {
	grid := []float64{0, 0.1, 0.2}
	cons := KnobConstraints{MaxErrorPct: []float64{15, 0}}
	choices, err := EnumerateChoices(grid, fig6Curve, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 {
		t.Fatalf("%d choices", len(choices))
	}
	// Low-class ceiling is 0.2 (error 15 <= 15); high stays at 0.
	last := choices[2]
	if math.Abs(last.Thetas[0]-0.2) > 1e-12 || last.Thetas[1] != 0 {
		t.Fatalf("last choice thetas = %v", last.Thetas)
	}
	if !last.Feasible {
		t.Fatal("last choice should be feasible")
	}
	// Errors reported per class.
	if math.Abs(last.ErrorPct[0]-15) > 1e-9 || last.ErrorPct[1] != 0 {
		t.Fatalf("errors = %v", last.ErrorPct)
	}
}

func TestEnumerateChoicesValidation(t *testing.T) {
	cons := KnobConstraints{MaxErrorPct: []float64{10}}
	if _, err := EnumerateChoices(nil, fig6Curve, cons, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := EnumerateChoices([]float64{0.5}, nil, cons, nil); err == nil {
		t.Fatal("nil curve accepted")
	}
	if _, err := EnumerateChoices([]float64{1.5}, fig6Curve, cons, nil); err == nil {
		t.Fatal("grid value out of range accepted")
	}
	if _, err := EnumerateChoices([]float64{0}, fig6Curve, KnobConstraints{}, nil); err == nil {
		t.Fatal("empty tolerances accepted")
	}
}
