package core

import (
	"testing"

	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// scaleStack builds a stack on a provisioned-but-elastic cluster.
func scaleStack(t *testing.T, nodes int, taskSec float64) (*simtime.Simulation, *cluster.Cluster, *engine.Engine, *Scheduler) {
	t.Helper()
	sim := simtime.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 1
	clu, err := cluster.New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: taskSec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New(sim, clu, eng, Config{Classes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sim, clu, eng, sch
}

// oneTaskJob builds a single-partition, single-stage job.
func oneTaskJob(name string) *engine.Job {
	return &engine.Job{
		Name:   name,
		Input:  engine.Dataset{engine.Partition{}},
		Stages: []engine.Stage{{Kind: engine.Result}},
	}
}

func TestAutoscalerBacklogScalesOutAndIn(t *testing.T) {
	sim, clu, eng, sch := scaleStack(t, 8, 30)
	as, err := NewAutoscaler(sim, clu, eng, sch, AutoscalerConfig{
		Policy:       BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 2},
		MinNodes:     2,
		MaxNodes:     8,
		InitialNodes: 2,
		IntervalSec:  10,
		HorizonSec:   2000,
	})
	if err != nil {
		t.Fatalf("NewAutoscaler: %v", err)
	}
	if got := clu.CommissionedNodes(); got != 2 {
		t.Fatalf("initial commissioned = %d, want 2", got)
	}
	// Burst of arrivals at t=1 builds a backlog (the scheduler runs one
	// job at a time, so queued jobs pile up regardless of slots).
	for i := 0; i < 8; i++ {
		job := oneTaskJob("burst")
		sim.At(1, func() {
			if err := sch.Arrive(0, job); err != nil {
				t.Errorf("Arrive: %v", err)
			}
		})
	}
	sim.Run()
	if as.ScaleOuts() == 0 {
		t.Fatal("backlog burst should have triggered scale-out")
	}
	if as.ScaleIns() == 0 {
		t.Fatal("drained queue should have triggered scale-in")
	}
	// After drain the commissioned count is back at the floor.
	if got := clu.CommissionedNodes(); got != 2 {
		t.Fatalf("commissioned after drain = %d, want 2", got)
	}
	// Elastic energy accounting: powered-node-seconds must be strictly
	// below the always-on equivalent.
	makespan := sim.Now().Seconds()
	if got, max := clu.PoweredNodeSeconds(), 8*makespan; got >= max {
		t.Fatalf("PoweredNodeSeconds = %g, want < %g (always-on)", got, max)
	}
	for _, ev := range as.Events() {
		if ev.ToNodes < 2 || ev.ToNodes > 8 {
			t.Fatalf("scale event outside bounds: %+v", ev)
		}
	}
}

func TestAutoscalerLatencyPolicy(t *testing.T) {
	sig := ScaleSignals{CommissionedNodes: 4, Completions: 5, EWMAResponseSec: 100}
	p := LatencyScalePolicy{TargetSec: 50, Headroom: 0.25, Step: 1}
	if got := p.TargetNodes(sig); got != 5 {
		t.Fatalf("over-target latency: target = %d, want 5", got)
	}
	sig.EWMAResponseSec = 20
	if got := p.TargetNodes(sig); got != 3 {
		t.Fatalf("under-target latency: target = %d, want 3", got)
	}
	sig.Sprinting = true
	if got := p.TargetNodes(sig); got != 4 {
		t.Fatalf("scale-in while sprinting must be refused: target = %d, want 4", got)
	}
	sig.Sprinting = false
	sig.Completions = 0
	if got := p.TargetNodes(sig); got != 4 {
		t.Fatalf("no completions yet: target = %d, want 4", got)
	}
}

func TestAutoscalerObserveEWMA(t *testing.T) {
	sim, clu, eng, sch := scaleStack(t, 2, 1)
	as, err := NewAutoscaler(sim, clu, eng, sch, AutoscalerConfig{
		Policy:      LatencyScalePolicy{TargetSec: 10, Headroom: 0.5, Step: 1},
		MinNodes:    1,
		MaxNodes:    2,
		IntervalSec: 5,
		HorizonSec:  10,
		EWMAAlpha:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	as.Observe(JobRecord{ResponseSec: 10})
	as.Observe(JobRecord{ResponseSec: 20})
	if got := as.EWMAResponseSec(); got != 15 {
		t.Fatalf("EWMA = %g, want 15", got)
	}
	// Failed jobs must not poison the latency signal.
	as.Observe(JobRecord{ResponseSec: 1e6, Failed: true})
	if got := as.EWMAResponseSec(); got != 15 {
		t.Fatalf("EWMA after failed record = %g, want 15", got)
	}
}

func TestAutoscalerConfigValidation(t *testing.T) {
	sim, clu, eng, sch := scaleStack(t, 4, 1)
	bad := []AutoscalerConfig{
		{},                             // no policy
		{Policy: BacklogScalePolicy{}}, // bad policy params
		{Policy: BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 1},
			MinNodes: 1, MaxNodes: 9, IntervalSec: 1, HorizonSec: 1}, // max > provisioned
		{Policy: BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 1},
			MinNodes: 0, MaxNodes: 4, IntervalSec: 1, HorizonSec: 1}, // min < 1
		{Policy: BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 1},
			MinNodes: 1, MaxNodes: 4, IntervalSec: 0, HorizonSec: 1}, // no interval
		{Policy: BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 1},
			MinNodes: 1, MaxNodes: 4, IntervalSec: 1}, // no horizon
	}
	for i, cfg := range bad {
		if _, err := NewAutoscaler(sim, clu, eng, sch, cfg); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}
