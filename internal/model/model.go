// Package model implements the paper's bottom-up stochastic models of job
// processing times (§4): the task-level CTMC whose transition rates are
// equation (1), and the wave-level model that strings per-wave phase-type
// execution times into one PH representation. Both yield phase-type
// distributions that plug directly into the queueing package to predict
// per-priority response times, and into the deflator's drop-ratio search.
package model

import (
	"errors"
	"fmt"
	"math"

	"dias/internal/matrix"
	"dias/internal/phdist"
	"dias/internal/queueing"
	"dias/internal/stats"
)

// EffectiveTasks returns ⌈n(1-θ)⌉, the number of tasks executed after
// dropping at ratio θ (the paper's n̄).
func EffectiveTasks(n int, theta float64) int {
	if n <= 0 {
		return 0
	}
	if theta <= 0 {
		return n
	}
	if theta >= 1 {
		return 0
	}
	return int(math.Ceil(float64(n) * (1 - theta)))
}

// Waves returns ⌈tasks/slots⌉, the paper's wave count.
func Waves(tasks, slots int) int {
	if tasks <= 0 || slots <= 0 {
		return 0
	}
	return (tasks + slots - 1) / slots
}

// TaskCountPMF is a probability mass function over task counts: entry i is
// the probability of having i+1 tasks (support starts at 1, as in §4.1).
type TaskCountPMF []float64

// Validate checks the PMF sums to one.
func (p TaskCountPMF) Validate() error {
	if len(p) == 0 {
		return errors.New("model: empty task-count distribution")
	}
	var sum float64
	for i, v := range p {
		if v < 0 {
			return fmt.Errorf("model: negative probability %g at %d tasks", v, i+1)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("model: task-count probabilities sum to %g", sum)
	}
	return nil
}

// FixedTasks is the degenerate PMF of exactly n tasks.
func FixedTasks(n int) TaskCountPMF {
	p := make(TaskCountPMF, n)
	p[n-1] = 1
	return p
}

// Max returns the largest task count with positive probability (N^k).
func (p TaskCountPMF) Max() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] > 0 {
			return i + 1
		}
	}
	return 0
}

// effectivePMF maps the PMF through ⌈t(1-θ)⌉: entry t̄ (1-based via index
// t̄-1) of the result is P(effective tasks = t̄).
func (p TaskCountPMF) effectivePMF(theta float64) TaskCountPMF {
	maxEff := EffectiveTasks(p.Max(), 0) // upper bound before drop
	out := make(TaskCountPMF, maxEff)
	for i, pr := range p {
		if pr == 0 {
			continue
		}
		eff := EffectiveTasks(i+1, theta)
		if eff >= 1 {
			out[eff-1] += pr
		}
	}
	// Trim trailing zeros.
	last := 0
	for i, v := range out {
		if v > 0 {
			last = i + 1
		}
	}
	return out[:last]
}

// --- Task-level model (§4.1) ---------------------------------------------

// TaskLevelConfig parameterizes the §4.1 CTMC for one priority class.
type TaskLevelConfig struct {
	// Slots is C, the cluster's parallelism cap.
	Slots int
	// MapTasks and ReduceTasks are the task-count distributions pm, pr.
	MapTasks    TaskCountPMF
	ReduceTasks TaskCountPMF
	// MuMap, MuReduce, MuSetup, MuShuffle are the exponential rates of
	// map/reduce task execution, initial setup (overhead stage O) and the
	// shuffle stage S. A zero MuSetup or MuShuffle skips that stage.
	MuMap, MuReduce, MuSetup, MuShuffle float64
	// ThetaMap and ThetaReduce are the drop ratios θm, θr in [0,1).
	ThetaMap, ThetaReduce float64
}

func (c TaskLevelConfig) validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("model: %d slots", c.Slots)
	}
	if err := c.MapTasks.Validate(); err != nil {
		return fmt.Errorf("map tasks: %w", err)
	}
	if err := c.ReduceTasks.Validate(); err != nil {
		return fmt.Errorf("reduce tasks: %w", err)
	}
	if c.MuMap <= 0 || c.MuReduce <= 0 {
		return fmt.Errorf("model: task rates map=%g reduce=%g", c.MuMap, c.MuReduce)
	}
	if c.MuSetup < 0 || c.MuShuffle < 0 {
		return fmt.Errorf("model: stage rates setup=%g shuffle=%g", c.MuSetup, c.MuShuffle)
	}
	if c.ThetaMap < 0 || c.ThetaMap >= 1 || c.ThetaReduce < 0 || c.ThetaReduce >= 1 {
		return fmt.Errorf("model: drop ratios θm=%g θr=%g out of [0,1)", c.ThetaMap, c.ThetaReduce)
	}
	return nil
}

// ProcessingTime builds the phase-type distribution of the job processing
// time with phase space {O, M_N̄m..M_1, S, R_N̄r..R_1} and the transition
// rates of equation (1).
func (c TaskLevelConfig) ProcessingTime() (*phdist.PH, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	pmEff := c.MapTasks.effectivePMF(c.ThetaMap)
	prEff := c.ReduceTasks.effectivePMF(c.ThetaReduce)
	nm := len(pmEff) // N̄m
	nr := len(prEff) // N̄r
	if nm == 0 || nr == 0 {
		return nil, errors.New("model: dropping removed all tasks")
	}

	hasSetup := c.MuSetup > 0
	hasShuffle := c.MuShuffle > 0

	// Phase layout: [O]? M_nm..M_1 [S]? R_nr..R_1.
	phases := nm + nr
	oIdx := -1
	if hasSetup {
		oIdx = 0
		phases++
	}
	mapBase := oIdx + 1 // phase index of M_nm
	mapIdx := func(t int) int { return mapBase + (nm - t) }
	sIdx := -1
	redBase := mapBase + nm
	if hasShuffle {
		sIdx = redBase
		redBase++
		phases++
	}
	redIdx := func(u int) int { return redBase + (nr - u) }

	f := matrix.Zeros(phases, phases)
	add := func(i, j int, rate float64) {
		f.Set(i, j, f.At(i, j)+rate)
		f.Set(i, i, f.At(i, i)-rate)
	}
	addExit := func(i int, rate float64) {
		f.Set(i, i, f.At(i, i)-rate)
	}

	parallel := func(t int) float64 {
		if t >= c.Slots {
			return float64(c.Slots)
		}
		return float64(t)
	}

	// Entry into the map stage: from O at rate µo·pm(t̄), or directly via
	// the initial vector when there is no setup stage.
	alpha := make([]float64, phases)
	if hasSetup {
		alpha[oIdx] = 1
		for tb := 1; tb <= nm; tb++ {
			if pmEff[tb-1] > 0 {
				add(oIdx, mapIdx(tb), c.MuSetup*pmEff[tb-1])
			}
		}
	} else {
		for tb := 1; tb <= nm; tb++ {
			alpha[mapIdx(tb)] = pmEff[tb-1]
		}
	}
	// Map stage: tasks finish one by one at min(t,C)·µm.
	for t := nm; t >= 2; t-- {
		add(mapIdx(t), mapIdx(t-1), parallel(t)*c.MuMap)
	}
	// M_1 → S (or directly into reduce when there is no shuffle stage).
	if hasShuffle {
		add(mapIdx(1), sIdx, c.MuMap)
		for ub := 1; ub <= nr; ub++ {
			if prEff[ub-1] > 0 {
				add(sIdx, redIdx(ub), c.MuShuffle*prEff[ub-1])
			}
		}
	} else {
		for ub := 1; ub <= nr; ub++ {
			if prEff[ub-1] > 0 {
				add(mapIdx(1), redIdx(ub), c.MuMap*prEff[ub-1])
			}
		}
	}
	// Reduce stage; R_1 exits to absorption (job completion).
	for u := nr; u >= 2; u-- {
		add(redIdx(u), redIdx(u-1), parallel(u)*c.MuReduce)
	}
	addExit(redIdx(1), c.MuReduce)

	return phdist.New(alpha, f)
}

// MeanProcessingTime is a convenience wrapper returning E[S].
func (c TaskLevelConfig) MeanProcessingTime() (float64, error) {
	ph, err := c.ProcessingTime()
	if err != nil {
		return 0, err
	}
	return ph.Mean()
}

// --- Wave-level model (§4.2) ---------------------------------------------

// WaveLevelConfig parameterizes the §4.2 model for one priority class.
// Per-wave execution times are arbitrary PH distributions, possibly
// different per wave index, avoiding the exponential-task assumption.
type WaveLevelConfig struct {
	// Slots is C.
	Slots int
	// MapTasks and ReduceTasks are the task-count distributions.
	MapTasks    TaskCountPMF
	ReduceTasks TaskCountPMF
	// ThetaMap and ThetaReduce are drop ratios in [0,1).
	ThetaMap, ThetaReduce float64
	// Setup and Shuffle are the overhead stage O and shuffle stage S
	// distributions; nil skips the stage.
	Setup, Shuffle *phdist.PH
	// MapWave(d) returns the execution-time distribution of the d-th map
	// wave (1-based); ReduceWave likewise. Both are required.
	MapWave, ReduceWave func(d int) *phdist.PH
}

// WaveCountPMF returns q(d): the probability that the stage needs d waves,
// computed from the task-count PMF, drop ratio and slot count exactly as
// the paper's q_m(d) double sum.
func WaveCountPMF(tasks TaskCountPMF, theta float64, slots int) ([]float64, error) {
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	if slots <= 0 {
		return nil, fmt.Errorf("model: %d slots", slots)
	}
	eff := tasks.effectivePMF(theta)
	maxWaves := Waves(len(eff), slots)
	q := make([]float64, maxWaves)
	for tb := 1; tb <= len(eff); tb++ {
		if eff[tb-1] == 0 {
			continue
		}
		d := Waves(tb, slots)
		q[d-1] += eff[tb-1]
	}
	return q, nil
}

func (c WaveLevelConfig) validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("model: %d slots", c.Slots)
	}
	if err := c.MapTasks.Validate(); err != nil {
		return fmt.Errorf("map tasks: %w", err)
	}
	if err := c.ReduceTasks.Validate(); err != nil {
		return fmt.Errorf("reduce tasks: %w", err)
	}
	if c.MapWave == nil || c.ReduceWave == nil {
		return errors.New("model: missing wave distributions")
	}
	if c.ThetaMap < 0 || c.ThetaMap >= 1 || c.ThetaReduce < 0 || c.ThetaReduce >= 1 {
		return fmt.Errorf("model: drop ratios θm=%g θr=%g out of [0,1)", c.ThetaMap, c.ThetaReduce)
	}
	return nil
}

// stagePH builds the PH of one stage: a q-weighted mixture over wave
// counts d of the convolution of d consecutive waves. Following the
// paper's block matrix (§4.2), a job needing d of the maximum D waves
// enters at wave D-d+1 and runs through wave D — e.g. with D=2, one-wave
// jobs start directly in α_m(2). This is that matrix expressed through PH
// closure operations.
func stagePH(q []float64, wave func(d int) *phdist.PH) (*phdist.PH, error) {
	var comps []*phdist.PH
	var weights []float64
	maxWaves := len(q)
	for d := 1; d <= maxWaves; d++ {
		if q[d-1] == 0 {
			continue
		}
		seq := make([]*phdist.PH, 0, d)
		for i := maxWaves - d + 1; i <= maxWaves; i++ {
			w := wave(i)
			if w == nil {
				return nil, fmt.Errorf("model: nil wave distribution at index %d", i)
			}
			seq = append(seq, w)
		}
		conv, err := phdist.ConvolveAll(seq...)
		if err != nil {
			return nil, err
		}
		comps = append(comps, conv)
		weights = append(weights, q[d-1])
	}
	if len(comps) == 0 {
		return nil, errors.New("model: stage has zero waves")
	}
	// Normalize weights defensively (they may sum to <1 on trimmed PMFs).
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	return phdist.Mixture(weights, comps)
}

// ProcessingTime assembles the wave-level PH representation of the job
// processing time: Setup ⊕ map waves ⊕ Shuffle ⊕ reduce waves.
func (c WaveLevelConfig) ProcessingTime() (*phdist.PH, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	qm, err := WaveCountPMF(c.MapTasks, c.ThetaMap, c.Slots)
	if err != nil {
		return nil, err
	}
	qr, err := WaveCountPMF(c.ReduceTasks, c.ThetaReduce, c.Slots)
	if err != nil {
		return nil, err
	}
	mapStage, err := stagePH(qm, c.MapWave)
	if err != nil {
		return nil, fmt.Errorf("map stage: %w", err)
	}
	redStage, err := stagePH(qr, c.ReduceWave)
	if err != nil {
		return nil, fmt.Errorf("reduce stage: %w", err)
	}
	parts := make([]*phdist.PH, 0, 4)
	if c.Setup != nil {
		parts = append(parts, c.Setup)
	}
	parts = append(parts, mapStage)
	if c.Shuffle != nil {
		parts = append(parts, c.Shuffle)
	}
	parts = append(parts, redStage)
	return phdist.ConvolveAll(parts...)
}

// --- Parameterization (§4.3) ---------------------------------------------

// OverheadModel interpolates the profiled setup overhead between two
// anchor measurements: no dropping and the maximum considered drop ratio
// (the paper profiles θ=0 and θ=0.9 only).
type OverheadModel struct {
	ThetaLo, OverheadLo float64
	ThetaHi, OverheadHi float64
}

// At returns the interpolated mean overhead at drop ratio theta.
func (o OverheadModel) At(theta float64) float64 {
	return stats.Interpolate(o.ThetaLo, o.OverheadLo, o.ThetaHi, o.OverheadHi, theta)
}

// FitWave fits a per-wave PH distribution from profiled execution-time
// samples via two-moment matching.
func FitWave(samples []float64) (*phdist.PH, error) {
	if len(samples) < 2 {
		return nil, errors.New("model: need at least two samples to fit a wave")
	}
	var s stats.Stream
	for _, x := range samples {
		if x <= 0 {
			return nil, fmt.Errorf("model: non-positive sample %g", x)
		}
		s.Add(x)
	}
	mean := s.Mean()
	scv := s.Variance() / (mean * mean)
	if scv < 1e-4 {
		scv = 1e-4
	}
	return phdist.FitMeanSCV(mean, scv)
}

// --- Response-time prediction --------------------------------------------

// ClassModel couples an arrival rate with a processing-time distribution
// for one priority class.
type ClassModel struct {
	Rate       float64
	Processing *phdist.PH
}

// PredictMeanResponse returns per-class mean response times under the
// given discipline, feeding each class's PH processing time into the
// M[K]/PH[K]/1 formulas. Class order: index = priority (higher = more
// important), as everywhere in this repo.
func PredictMeanResponse(classes []ClassModel, d queueing.Discipline) ([]float64, error) {
	qc := make([]queueing.Class, len(classes))
	for k, c := range classes {
		cls, err := queueing.FromPH(c.Rate, c.Processing)
		if err != nil {
			return nil, fmt.Errorf("class %d: %w", k, err)
		}
		qc[k] = cls
	}
	return queueing.MeanResponseTimes(qc, d)
}
