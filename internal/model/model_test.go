package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/matrix"
	"dias/internal/phdist"
	"dias/internal/queueing"
)

func TestEffectiveTasks(t *testing.T) {
	cases := []struct {
		n     int
		theta float64
		want  int
	}{
		{50, 0, 50}, {50, 0.2, 40}, {50, 0.9, 5}, {3, 0.5, 2},
		{1, 0.9, 1}, {10, 1, 0}, {0, 0.5, 0}, {10, -1, 10},
	}
	for _, c := range cases {
		if got := EffectiveTasks(c.n, c.theta); got != c.want {
			t.Fatalf("EffectiveTasks(%d, %g) = %d, want %d", c.n, c.theta, got, c.want)
		}
	}
}

func TestWaves(t *testing.T) {
	cases := []struct{ tasks, slots, want int }{
		{40, 20, 2}, {41, 20, 3}, {20, 20, 1}, {1, 20, 1}, {0, 20, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := Waves(c.tasks, c.slots); got != c.want {
			t.Fatalf("Waves(%d, %d) = %d, want %d", c.tasks, c.slots, got, c.want)
		}
	}
}

func TestTaskCountPMF(t *testing.T) {
	p := FixedTasks(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Max() != 5 {
		t.Fatalf("Max = %d", p.Max())
	}
	if err := (TaskCountPMF{0.5, 0.4}).Validate(); err == nil {
		t.Fatal("non-normalized PMF accepted")
	}
	if err := (TaskCountPMF{}).Validate(); err == nil {
		t.Fatal("empty PMF accepted")
	}
	if err := (TaskCountPMF{-0.1, 1.1}).Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestEffectivePMF(t *testing.T) {
	// 10 tasks with θ=0.5 -> 5 effective.
	p := FixedTasks(10).effectivePMF(0.5)
	if len(p) != 5 || math.Abs(p[4]-1) > 1e-12 {
		t.Fatalf("effectivePMF = %v", p)
	}
	// Mixed counts collapsing onto the same effective value.
	mixed := TaskCountPMF{0, 0.5, 0.5} // 2 or 3 tasks, half each
	eff := mixed.effectivePMF(0.4)     // ⌈2·0.6⌉=2, ⌈3·0.6⌉=2
	if len(eff) != 2 || math.Abs(eff[1]-1) > 1e-12 {
		t.Fatalf("collapsed effectivePMF = %v", eff)
	}
}

// baseTaskConfig returns a valid minimal config to mutate in tests.
func baseTaskConfig() TaskLevelConfig {
	return TaskLevelConfig{
		Slots:       4,
		MapTasks:    FixedTasks(3),
		ReduceTasks: FixedTasks(2),
		MuMap:       1,
		MuReduce:    2,
	}
}

func TestTaskLevelValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TaskLevelConfig)
	}{
		{"zero slots", func(c *TaskLevelConfig) { c.Slots = 0 }},
		{"bad map pmf", func(c *TaskLevelConfig) { c.MapTasks = TaskCountPMF{0.5} }},
		{"zero mu map", func(c *TaskLevelConfig) { c.MuMap = 0 }},
		{"negative shuffle", func(c *TaskLevelConfig) { c.MuShuffle = -1 }},
		{"theta out of range", func(c *TaskLevelConfig) { c.ThetaMap = 1 }},
	}
	for _, c := range cases {
		cfg := baseTaskConfig()
		c.mutate(&cfg)
		if _, err := cfg.ProcessingTime(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestTaskLevelSerialChain(t *testing.T) {
	// C=1: tasks run serially, so the processing time is Erlang-like:
	// E[S] = t/µm + u/µr (+ setup + shuffle).
	cfg := TaskLevelConfig{
		Slots:       1,
		MapTasks:    FixedTasks(3),
		ReduceTasks: FixedTasks(2),
		MuMap:       2,
		MuReduce:    4,
		MuSetup:     10,
		MuShuffle:   5,
	}
	mean, err := cfg.MeanProcessingTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0/2 + 2.0/4 + 1.0/10 + 1.0/5
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestTaskLevelParallelDrain(t *testing.T) {
	// C >= t: the map stage drains like an M/M/∞ departure chain:
	// E = Σ_{j=1..t} 1/(j·µ). Single reduce task adds 1/µr.
	cfg := TaskLevelConfig{
		Slots:       10,
		MapTasks:    FixedTasks(4),
		ReduceTasks: FixedTasks(1),
		MuMap:       1,
		MuReduce:    1,
	}
	mean, err := cfg.MeanProcessingTime()
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 1.0/2 + 1.0/3 + 1.0/4) + 1.0
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestTaskLevelSlotsCap(t *testing.T) {
	// With C=2 and 4 tasks: rates 2µ,2µ,2µ,µ — wait, transitions are
	// M4→M3 at 2µ, M3→M2 at 2µ, M2→M1 at 2µ, M1→S at µ.
	cfg := TaskLevelConfig{
		Slots:       2,
		MapTasks:    FixedTasks(4),
		ReduceTasks: FixedTasks(1),
		MuMap:       1,
		MuReduce:    100, // negligible
	}
	mean, err := cfg.MeanProcessingTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 3*(1.0/2) + 1.0 + 1.0/100
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestTaskLevelDropShortensJobs(t *testing.T) {
	means := make([]float64, 0, 3)
	for _, theta := range []float64{0, 0.4, 0.8} {
		cfg := baseTaskConfig()
		cfg.MapTasks = FixedTasks(10)
		cfg.ThetaMap = theta
		m, err := cfg.MeanProcessingTime()
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, m)
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Fatalf("means not decreasing with drop: %v", means)
	}
}

func TestTaskLevelRandomTaskCounts(t *testing.T) {
	// Mean over a 50/50 mixture of 1-task and 3-task jobs at C=1 equals
	// the average of the two deterministic means.
	cfg := TaskLevelConfig{
		Slots:       1,
		MapTasks:    TaskCountPMF{0.5, 0, 0.5},
		ReduceTasks: FixedTasks(1),
		MuMap:       1,
		MuReduce:    1,
	}
	mean, err := cfg.MeanProcessingTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*(1.0+1.0) + 0.5*(3.0+1.0)
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestWaveCountPMF(t *testing.T) {
	// 40 tasks on 20 slots: always 2 waves.
	q, err := WaveCountPMF(FixedTasks(40), 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || math.Abs(q[1]-1) > 1e-12 {
		t.Fatalf("q = %v", q)
	}
	// Dropping 60% of 40 tasks -> 16 tasks -> 1 wave.
	q, err = WaveCountPMF(FixedTasks(40), 0.6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || math.Abs(q[0]-1) > 1e-12 {
		t.Fatalf("q after drop = %v", q)
	}
	// Mixture straddling the wave boundary.
	pmf := TaskCountPMF(make([]float64, 25))
	pmf[19] = 0.5 // 20 tasks -> 1 wave
	pmf[24] = 0.5 // 25 tasks -> 2 waves
	q, err = WaveCountPMF(pmf, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[0]-0.5) > 1e-12 || math.Abs(q[1]-0.5) > 1e-12 {
		t.Fatalf("straddling q = %v", q)
	}
	if _, err := WaveCountPMF(FixedTasks(5), 0, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func mustExp(t *testing.T, rate float64) *phdist.PH {
	t.Helper()
	ph, err := phdist.Exponential(rate)
	if err != nil {
		t.Fatal(err)
	}
	return ph
}

func TestWaveLevelMean(t *testing.T) {
	// Deterministic 2 map waves and 1 reduce wave with exponential parts:
	// E = E[setup] + E[w1] + E[w2] + E[shuffle] + E[r1].
	setup := mustExp(t, 10)
	shuffle := mustExp(t, 5)
	cfg := WaveLevelConfig{
		Slots:       20,
		MapTasks:    FixedTasks(40),
		ReduceTasks: FixedTasks(10),
		Setup:       setup,
		Shuffle:     shuffle,
		MapWave:     func(d int) *phdist.PH { return mustExp(t, float64(d)) }, // waves 1,2
		ReduceWave:  func(d int) *phdist.PH { return mustExp(t, 4) },
	}
	ph, err := cfg.ProcessingTime()
	if err != nil {
		t.Fatal(err)
	}
	mean, err := ph.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 + (1.0 + 0.5) + 0.2 + 0.25
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestWaveLevelValidation(t *testing.T) {
	good := WaveLevelConfig{
		Slots:       2,
		MapTasks:    FixedTasks(2),
		ReduceTasks: FixedTasks(2),
		MapWave:     func(int) *phdist.PH { return mustExp(t, 1) },
		ReduceWave:  func(int) *phdist.PH { return mustExp(t, 1) },
	}
	if _, err := good.ProcessingTime(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.MapWave = nil
	if _, err := bad.ProcessingTime(); err == nil {
		t.Fatal("nil wave accepted")
	}
	bad = good
	bad.ThetaReduce = 1.2
	if _, err := bad.ProcessingTime(); err == nil {
		t.Fatal("theta out of range accepted")
	}
}

// TestWaveLevelMatchesPaperBlockMatrix rebuilds the explicit wm=wr=2 block
// matrix from §4.2 and verifies the closure-based construction yields the
// same distribution.
func TestWaveLevelMatchesPaperBlockMatrix(t *testing.T) {
	// Components: setup O, map waves m1/m2, shuffle S, reduce waves r1/r2.
	// All single-phase exponentials with distinct rates; qm=(0.3,0.7),
	// qr=(0.6,0.4) arranged via task-count PMFs on C=2.
	muO, muM1, muM2, muS, muR1, muR2 := 9.0, 1.0, 2.0, 7.0, 3.0, 4.0
	qm1, qm2 := 0.3, 0.7
	qr1, qr2 := 0.6, 0.4

	mapPMF := TaskCountPMF(make([]float64, 4))
	mapPMF[1] = qm1 // 2 tasks -> 1 wave on C=2
	mapPMF[3] = qm2 // 4 tasks -> 2 waves
	redPMF := TaskCountPMF(make([]float64, 4))
	redPMF[1] = qr1
	redPMF[3] = qr2

	cfg := WaveLevelConfig{
		Slots:       2,
		MapTasks:    mapPMF,
		ReduceTasks: redPMF,
		Setup:       mustExp(t, muO),
		Shuffle:     mustExp(t, muS),
		MapWave: func(d int) *phdist.PH {
			if d == 1 {
				return mustExp(t, muM1)
			}
			return mustExp(t, muM2)
		},
		ReduceWave: func(d int) *phdist.PH {
			if d == 1 {
				return mustExp(t, muR1)
			}
			return mustExp(t, muR2)
		},
	}
	got, err := cfg.ProcessingTime()
	if err != nil {
		t.Fatal(err)
	}

	// Paper's explicit 6-phase matrix: order O, M(1), M(2), S, R(1), R(2).
	// One-wave jobs enter the *last* wave block (αm(2)·qm(1)).
	a := matrix.Zeros(6, 6)
	a.Set(0, 0, -muO)
	a.Set(0, 1, muO*qm2) // needs 2 waves: start at wave 1
	a.Set(0, 2, muO*qm1) // needs 1 wave: start at wave 2
	a.Set(1, 1, -muM1)
	a.Set(1, 2, muM1)
	a.Set(2, 2, -muM2)
	a.Set(2, 3, muM2)
	a.Set(3, 3, -muS)
	a.Set(3, 4, muS*qr2)
	a.Set(3, 5, muS*qr1)
	a.Set(4, 4, -muR1)
	a.Set(4, 5, muR1)
	a.Set(5, 5, -muR2)
	want, err := phdist.New([]float64{1, 0, 0, 0, 0, 0}, a)
	if err != nil {
		t.Fatal(err)
	}

	gm, err := got.Mean()
	if err != nil {
		t.Fatal(err)
	}
	wm, err := want.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-wm) > 1e-9 {
		t.Fatalf("means differ: closure %g vs block matrix %g", gm, wm)
	}
	for _, x := range []float64{0.2, 0.5, 1, 2, 4} {
		if g, w := got.CDF(x), want.CDF(x); math.Abs(g-w) > 1e-8 {
			t.Fatalf("CDF(%g): closure %g vs block matrix %g", x, g, w)
		}
	}
}

func TestOverheadModel(t *testing.T) {
	o := OverheadModel{ThetaLo: 0, OverheadLo: 20, ThetaHi: 0.9, OverheadHi: 5}
	if got := o.At(0); got != 20 {
		t.Fatalf("At(0) = %g", got)
	}
	if got := o.At(0.9); got != 5 {
		t.Fatalf("At(0.9) = %g", got)
	}
	if got := o.At(0.45); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("At(0.45) = %g", got)
	}
}

func TestFitWave(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, err := phdist.Erlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = src.Sample(rng)
	}
	fit, err := FitWave(samples)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := fit.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2)/2 > 0.05 {
		t.Fatalf("fitted mean = %g, want ~2", mean)
	}
	if _, err := FitWave([]float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := FitWave([]float64{1, -2}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func TestPredictMeanResponse(t *testing.T) {
	// Two classes with exponential processing; must equal queueing directly.
	low := mustExp(t, 1.0/100)
	high := mustExp(t, 1.0/50)
	classes := []ClassModel{
		{Rate: 0.005, Processing: low},
		{Rate: 0.002, Processing: high},
	}
	got, err := PredictMeanResponse(classes, queueing.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := queueing.FromPH(0.005, low)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := queueing.FromPH(0.002, high)
	if err != nil {
		t.Fatal(err)
	}
	want, err := queueing.MeanResponseTimes([]queueing.Class{cl, ch}, queueing.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("class %d: %g vs %g", k, got[k], want[k])
		}
	}
}

// Property: task-level mean processing time decreases monotonically in the
// map drop ratio.
func TestPropertyDropMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TaskLevelConfig{
			Slots:       1 + rng.Intn(8),
			MapTasks:    FixedTasks(2 + rng.Intn(30)),
			ReduceTasks: FixedTasks(1 + rng.Intn(10)),
			MuMap:       0.5 + rng.Float64()*2,
			MuReduce:    0.5 + rng.Float64()*2,
			MuSetup:     1 + rng.Float64()*10,
		}
		prev := math.Inf(1)
		for _, theta := range []float64{0, 0.3, 0.6, 0.9} {
			cfg.ThetaMap = theta
			m, err := cfg.MeanProcessingTime()
			if err != nil {
				return false
			}
			if m > prev+1e-9 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the task-level PH is a valid distribution (CDF in [0,1],
// increasing) for random configurations.
func TestPropertyTaskLevelValidPH(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TaskLevelConfig{
			Slots:       1 + rng.Intn(6),
			MapTasks:    FixedTasks(1 + rng.Intn(12)),
			ReduceTasks: FixedTasks(1 + rng.Intn(6)),
			MuMap:       0.2 + rng.Float64(),
			MuReduce:    0.2 + rng.Float64(),
			MuShuffle:   rng.Float64() * 5,
		}
		ph, err := cfg.ProcessingTime()
		if err != nil {
			return false
		}
		mean, err := ph.Mean()
		if err != nil || mean <= 0 {
			return false
		}
		prev := -1.0
		for x := 0.0; x < mean*4; x += mean / 3 {
			c := ph.CDF(x)
			if c < prev-1e-9 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
