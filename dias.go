// Package dias is a from-scratch Go reproduction of "Differential
// Approximation and Sprinting for Multi-Priority Big Data Engines"
// (Birke et al., Middleware 2019): a priority scheduler that replaces
// preemptive eviction with per-class task dropping (approximation) and
// DVFS sprinting, built on a simulated Spark-like dataflow engine.
//
// This package is the facade over the internal building blocks:
//
//   - internal/simtime   discrete-event simulation kernel
//   - internal/cluster   slots, DVFS sprinting, power/energy model
//   - internal/dfs       HDFS-like replicated block store
//   - internal/engine    dataflow engine with task dropping and eviction
//   - internal/analytics word-popularity and triangle-count jobs
//   - internal/workload  synthetic corpora, graphs, Poisson job streams
//   - internal/phdist    phase-type distributions (§4 building block)
//   - internal/model     task-level and wave-level job-time models (§4)
//   - internal/queueing  M[K]/PH[K]/1 priority-queue solver + simulator
//   - internal/core      DiAS: buffers, deflator, sprinter, policies,
//     and the closed-loop AdaptiveDeflator
//   - internal/admission overload control: token-bucket, queue-depth and
//     SLO-budget shedding ahead of the buffers
//   - internal/mmap      MMAP[K] arrival processes (bursty traffic)
//   - internal/trace     scheduler event log, replayable as workload
//   - internal/faults    fault/churn injection: node crash/recover
//     (stochastic or trace-driven), bounded-retry task faults, stragglers
//   - internal/metrics   per-class latency/waste/energy/slowdown aggregation
//   - internal/federation multi-cluster dispatcher with pluggable routing
//   - internal/experiments  one driver per paper figure and table
//
// Stack wires a complete simulated deployment and NewFederation shards
// the same stack across many clusters; the examples/ directory shows
// end-to-end usage, and bench_test.go regenerates every figure.
package dias

import (
	"fmt"
	"math/rand"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/federation"
	"dias/internal/simtime"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// StackConfig assembles a simulated DiAS deployment.
type StackConfig struct {
	// Cluster describes the simulated machines; zero value means the
	// paper's testbed (10 workers x 2 slots, 800 MHz->2.4 GHz DVFS).
	Cluster cluster.Config
	// Cost converts work to virtual task durations; zero value means
	// engine.DefaultCostModel.
	Cost engine.CostModel
	// Policy selects the scheduling discipline and DiAS knobs (see
	// core.PolicyP, PolicyNP, PolicyDA, PolicyDiAS).
	Policy core.Config
	// Faults, when non-nil, arms the fault/churn injection layer: node
	// crash/recover processes (stochastic or trace-driven), per-task
	// failures with bounded retries, and stragglers. See internal/faults.
	Faults *faults.Config
	// Admission, when non-nil, gates every arrival before it is buffered
	// (see internal/admission and AdmissionPolicies). On a single stack a
	// Defer verdict degrades to a rejection. Nil admits everything and is
	// byte-identical to the "always" policy.
	Admission admission.Policy
	// Scaling, when non-nil, drives elastic capacity through a
	// core.Autoscaler: the cluster is provisioned at Cluster.Nodes and the
	// scale policy (see ScalePolicies) commissions/decommissions nodes
	// inside the configured bounds at run time.
	Scaling *core.AutoscalerConfig
	// Autoscale is the old name for Scaling.
	//
	// Deprecated: use Scaling. Setting both is an error.
	Autoscale *core.AutoscalerConfig
	// Deflation, when non-nil, builds the deflator for this stack (see
	// DeflationPolicies). Setting both Deflation and Policy.Deflator is an
	// error.
	Deflation DeflatorFactory
	// Telemetry, when non-nil, traces the stack into the collector: job
	// lifecycle spans from the scheduler and engine, and periodic gauges
	// sampled while Run drains the simulation. Tracing is observational
	// only — results are byte-identical with or without it. Setting both
	// Telemetry and Policy.Tracer is an error.
	Telemetry *telemetry.Collector
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
}

// Stack is a complete simulated deployment: virtual clock, cluster,
// dataflow engine and the DiAS scheduler on top, plus the optional fault
// injector and autoscaler when the config arms them.
type Stack struct {
	Sim       *simtime.Simulation
	Cluster   *cluster.Cluster
	Engine    *engine.Engine
	Scheduler *core.Scheduler
	// Faults is the armed injector (nil unless StackConfig.Faults is set).
	Faults *faults.Injector
	// Autoscaler is the armed capacity controller (nil unless
	// StackConfig.Scaling is set). Feed it completions by wiring
	// Policy.OnRecord to Autoscaler.Observe, or use NewStack which does.
	Autoscaler *core.Autoscaler

	// sampler, when non-nil, drives Run with gauge sampling (telemetry).
	sampler *telemetry.Sampler
}

// NewStack builds a ready-to-use deployment.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.Cluster.Nodes == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	zero := engine.CostModel{}
	if cfg.Cost == zero {
		cfg.Cost = engine.DefaultCostModel()
	}
	scaling := cfg.Scaling
	if cfg.Autoscale != nil {
		if scaling != nil {
			return nil, fmt.Errorf("dias: set StackConfig.Scaling or the deprecated Autoscale, not both")
		}
		scaling = cfg.Autoscale
	}
	sim := simtime.New()
	clu, err := cluster.New(sim, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("building cluster: %w", err)
	}
	eng, err := engine.New(sim, clu, nil, cfg.Cost, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("building engine: %w", err)
	}
	policy := cfg.Policy
	if cfg.Admission != nil {
		if policy.Admission != nil {
			return nil, fmt.Errorf("dias: set StackConfig.Admission or Policy.Admission, not both")
		}
		policy.Admission = cfg.Admission
	}
	if cfg.Deflation != nil {
		if policy.Deflator != nil {
			return nil, fmt.Errorf("dias: set StackConfig.Deflation or Policy.Deflator, not both")
		}
		if policy.Deflator, err = cfg.Deflation(sim); err != nil {
			return nil, fmt.Errorf("building deflator: %w", err)
		}
	}
	if cfg.Telemetry != nil {
		if policy.Tracer != nil {
			return nil, fmt.Errorf("dias: set StackConfig.Telemetry or Policy.Tracer, not both")
		}
		tr := cfg.Telemetry.Member(0)
		policy.Tracer = tr
		eng.SetTracer(tr)
	}
	stack := &Stack{Sim: sim, Cluster: clu, Engine: eng}
	if scaling != nil {
		// The autoscaler's latency signal taps the same record stream the
		// caller's hook sees; the autoscaler itself is built after the
		// scheduler, so the closure binds the stack field late.
		userHook := policy.OnRecord
		policy.OnRecord = func(rec core.JobRecord) {
			if userHook != nil {
				userHook(rec)
			}
			if stack.Autoscaler != nil {
				stack.Autoscaler.Observe(rec)
			}
		}
	}
	sch, err := core.New(sim, clu, eng, policy)
	if err != nil {
		return nil, fmt.Errorf("building scheduler: %w", err)
	}
	stack.Scheduler = sch
	if cfg.Faults != nil {
		if stack.Faults, err = faults.Attach(sim, eng, *cfg.Faults); err != nil {
			return nil, fmt.Errorf("arming fault injection: %w", err)
		}
	}
	if scaling != nil {
		if stack.Autoscaler, err = core.NewAutoscaler(sim, clu, eng, sch, *scaling); err != nil {
			return nil, fmt.Errorf("arming autoscaler: %w", err)
		}
	}
	if cfg.Telemetry != nil {
		stack.sampler = telemetry.NewSampler(cfg.Telemetry, []telemetry.MemberGauges{{
			Classes:       policy.Classes,
			QueuedInClass: sch.QueuedJobsInClass,
			Rejected:      sch.RejectedJobs,
			BusySlots:     clu.BusySlots,
			PoweredNodes:  clu.PoweredNodes,
			Utilization:   clu.Utilization,
		}})
	}
	return stack, nil
}

// SubmitAt schedules a job arrival at virtual time t seconds.
func (s *Stack) SubmitAt(t float64, class int, job *engine.Job) {
	s.Sim.At(simtime.Time(t), func() {
		// Arrival errors are programming errors (bad class/job); surface
		// them loudly rather than silently dropping workload.
		if err := s.Scheduler.Arrive(class, job); err != nil {
			panic(fmt.Sprintf("dias: arrival at t=%g failed: %v", t, err))
		}
	})
}

// SubmitStream schedules n arrivals drawn from any arrival process
// (Poisson mix, Gamma/MMPP bursty streams, MMAP source, trace replay,
// bootstrap) with jobs built by the source (fixed templates or
// per-arrival variants). The seed drives both the arrival and the
// job-variant RNGs.
//
// Arrivals are injected feed-forward: only the next arrival is pending
// at any instant, and each arrival event builds its job and schedules
// the following one (workload.Inject), so submission memory is O(1) at
// any n — a million-job stream costs the same as a hundred-job one. The
// RNG draw order matches the former materialized path, so results are
// unchanged. Because jobs are now built mid-run, a job-source failure
// panics at its arrival instant (like SubmitAt on a bad arrival) rather
// than being returned here.
func (s *Stack) SubmitStream(proc workload.Process, source workload.JobSource, n int, seed int64) error {
	if proc == nil || source == nil {
		return fmt.Errorf("dias: nil arrival process or job source")
	}
	arrRng := rand.New(rand.NewSource(seed))
	jobRng := rand.New(rand.NewSource(seed + 1))
	return workload.Inject(s.Sim, proc, source, n, arrRng, jobRng, func(class int, job *engine.Job) {
		if err := s.Scheduler.Arrive(class, job); err != nil {
			panic(fmt.Sprintf("dias: arrival at t=%v failed: %v", s.Sim.Now(), err))
		}
	})
}

// InjectFailures arms random node fail/repair cycles on the deployment
// (see engine.FailureConfig); running tasks on failed nodes are re-executed.
func (s *Stack) InjectFailures(cfg engine.FailureConfig) error {
	_, err := engine.NewFailureInjector(s.Sim, s.Engine, cfg)
	return err
}

// Run drains the simulation: all scheduled arrivals are processed and all
// jobs run to completion. With telemetry configured the run is driven
// through the gauge sampler, which fires the same events at the same
// instants and leaves the clock untouched (see telemetry.Sampler.Drive).
func (s *Stack) Run() {
	if s.sampler != nil {
		s.sampler.Drive(s.Sim)
		return
	}
	s.Sim.Run()
}

// Records returns the completed-job records.
func (s *Stack) Records() []core.JobRecord { return s.Scheduler.Records() }

// FederationConfig assembles a multi-cluster deployment: one DiAS stack
// per cluster on a shared virtual clock, behind a routing dispatcher (see
// internal/federation for the policy catalogue and data model).
type FederationConfig struct {
	// Clusters describes the member clusters; zero-value entries mean the
	// paper's testbed. Nil means a homogeneous pair of default clusters.
	Clusters []cluster.Config
	// Cost applies to every member; zero value means the default model.
	Cost engine.CostModel
	// Policy is the per-member scheduling discipline.
	Policy core.Config
	// Routing picks each arrival's destination; nil means join-shortest-
	// queue.
	Routing federation.RoutingPolicy
	// Admission, when non-nil, is a per-member policy factory (admission
	// policies are stateful, so each member needs its own instance). A
	// Defer verdict re-routes the arrival to the next member with room;
	// when every member defers it is rejected at the routed member. Nil
	// admits everything.
	Admission func() admission.Policy
	// Data, when non-nil, enables the cross-cluster data model: every
	// member gets its own dfs and off-home routing pays WAN input fetches.
	Data *dfs.Config
	// Telemetry, when non-nil, traces the federation into the collector
	// (member-indexed spans, routing decisions, per-member gauges).
	Telemetry *telemetry.Collector
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// SimWorkers > 1 runs the federation on the conservative parallel
	// kernel: one event-loop goroutine per member cluster, synchronized
	// under lookahead windows. Results are byte-identical to the serial
	// run at any setting; only wall-clock changes. 0 or 1 means serial.
	SimWorkers int
	// LookaheadSec overrides the conservative window width in simulated
	// seconds. 0 derives it from the data model's WAN transfer delay
	// (unbounded when Data is nil). Only meaningful with SimWorkers > 1.
	LookaheadSec float64
}

// NewFederation builds a ready-to-use multi-cluster deployment. Submit
// work with Federation.SubmitAt/SubmitStream and drain it with Run, just
// like a single Stack.
func NewFederation(cfg FederationConfig) (*federation.Federation, error) {
	if len(cfg.Clusters) == 0 {
		cfg.Clusters = []cluster.Config{cluster.DefaultConfig(), cluster.DefaultConfig()}
	}
	if cfg.Routing == nil {
		cfg.Routing = federation.NewJoinShortestQueue()
	}
	members := make([]federation.MemberSpec, len(cfg.Clusters))
	for i, c := range cfg.Clusters {
		members[i] = federation.MemberSpec{Cluster: c, Cost: cfg.Cost}
	}
	return federation.New(federation.Config{
		Members:      members,
		Policy:       cfg.Policy,
		Routing:      cfg.Routing,
		Admission:    cfg.Admission,
		Data:         cfg.Data,
		Seed:         cfg.Seed,
		Telemetry:    cfg.Telemetry,
		SimWorkers:   cfg.SimWorkers,
		LookaheadSec: cfg.LookaheadSec,
	})
}
