// Package dias_test hosts the full benchmark harness: one benchmark per
// table and figure of the paper's evaluation, regenerating the data the
// paper plots (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Run with
//
//	go test -bench=. -benchmem
//
// Each iteration regenerates the complete figure at QuickScale; the CLI
// cmd/dias-experiments produces the larger FullScale numbers.
package dias_test

import (
	"context"
	"fmt"
	"testing"

	"dias"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/experiments"
	"dias/internal/federation"
	"dias/internal/runner"
	"dias/internal/telemetry"
)

// benchScale keeps per-iteration work bounded for testing.B; -short
// shrinks the arrival count further for the CI fast lane.
func benchScale() experiments.Scale {
	s := experiments.Scale{Jobs: 120, WarmupFraction: 0.1, Seed: 1}
	if testing.Short() {
		s.Jobs = 40
	}
	return s
}

// skipIfShort drops the graph-backed benchmarks from the -short lane;
// their jobs are ~10x heavier per arrival than the text figures.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy graph figure; run without -short")
	}
}

// BenchmarkFigureSetRunner is the runner-backed path: it regenerates a
// representative figure set as one concurrent grid through internal/runner.
// Each figure runs its inner grid on a single worker so the cross-figure
// pool is the only source of parallelism — total concurrency stays at
// min(figures, cores) rather than oversubscribing every core per figure.
func BenchmarkFigureSetRunner(b *testing.B) {
	sc := benchScale()
	sc.Workers = 1
	tasks := []runner.Task[fmt.Stringer]{
		func(context.Context) (fmt.Stringer, error) { return experiments.Motivation(sc) },
		func(context.Context) (fmt.Stringer, error) { return experiments.Figure7(sc) },
		func(context.Context) (fmt.Stringer, error) { return experiments.Figure9(sc) },
		func(context.Context) (fmt.Stringer, error) { return experiments.ExtensionVariableSizes(sc) },
	}
	pool := runner.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Map(context.Background(), pool, tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelChurn isolates the simulation spine from the analytics
// compute: a single no-op-stage job template re-executed through the full
// scheduler/engine/simtime path. It is the benchmark to watch when
// touching the event queue, dispatch, or buffer management — figure
// benchmarks also carry per-record workload compute.
func BenchmarkKernelChurn(b *testing.B) {
	input := make(engine.Dataset, 40)
	for p := range input {
		input[p] = engine.Partition{{Key: "k", Value: 1.0}}
	}
	job := &engine.Job{
		Name:      "churn",
		Input:     input,
		SizeBytes: 1 << 20,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 10},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(2), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 200; j++ {
			stack.SubmitAt(float64(j), j%2, job)
		}
		stack.Run()
		if got := len(stack.Records()); got != 200 {
			b.Fatalf("completed %d jobs, want 200", got)
		}
	}
}

// BenchmarkKernelChurnTraced is the same spine with the telemetry layer
// armed: every lifecycle hook fires into a collector and the run is
// driven through the gauge sampler. Compare against BenchmarkKernelChurn
// to read the enabled-telemetry overhead; BENCHMARKING.md gates it at
// <10% wall-clock (the disabled case is gated at zero added allocations
// by BenchmarkKernelChurn itself — tracer hooks are nil-guarded).
func BenchmarkKernelChurnTraced(b *testing.B) {
	input := make(engine.Dataset, 40)
	for p := range input {
		input[p] = engine.Partition{{Key: "k", Value: 1.0}}
	}
	job := &engine.Job{
		Name:      "churn",
		Input:     input,
		SizeBytes: 1 << 20,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 10},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := telemetry.NewCollector(telemetry.Config{Seed: 1})
		stack, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(2), Seed: 1, Telemetry: col})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 200; j++ {
			stack.SubmitAt(float64(j), j%2, job)
		}
		stack.Run()
		if got := len(stack.Records()); got != 200 {
			b.Fatalf("completed %d jobs, want 200", got)
		}
		if col.SeenJobs() != 200 {
			b.Fatalf("traced %d jobs, want 200", col.SeenJobs())
		}
	}
}

// BenchmarkDispatcherRouting isolates the federation dispatch hot path:
// 10k routing decisions across an 8-cluster federation per policy, with
// member backlogs populated so backlog/budget scans do real work. Routing
// sits on every arrival, so like the PR 2 hot paths it must stay
// allocation-free (-benchmem).
func BenchmarkDispatcherRouting(b *testing.B) {
	fed, err := dias.NewFederation(dias.FederationConfig{
		Clusters: make([]cluster.Config, 8), // zero-value entries: default testbed
		Policy:   core.PolicyNP(2),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	members := fed.Members()
	input := make(engine.Dataset, 8)
	for p := range input {
		input[p] = engine.Partition{{Key: "k", Value: 1.0}}
	}
	job := &engine.Job{
		Name:      "route",
		Input:     input,
		SizeBytes: 1 << 20,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 4},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
	// Uneven backlogs so argmin scans cannot shortcut on the first member.
	for i, m := range members {
		for j := 0; j < 1+i%3; j++ {
			if err := m.Scheduler.Arrive(j%2, job); err != nil {
				b.Fatal(err)
			}
		}
	}
	arr := federation.Arrival{Class: 1, Job: job, Home: 3}
	policies := []federation.RoutingPolicy{
		federation.NewRandom(1),
		federation.NewRoundRobin(),
		federation.NewJoinShortestQueue(),
		federation.NewLeastLoaded(),
		federation.NewSprintAware(),
		federation.NewDataLocal(4),
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 10000; j++ {
					if idx := p.Route(arr, members); idx < 0 || idx >= len(members) {
						b.Fatalf("routed out of range: %d", idx)
					}
				}
			}
		})
	}
}

// BenchmarkFederationChurnRouting measures the routing hot path while
// the federation churns underneath it: member-level outages flip the
// dispatcher onto its filtered-candidate scan path, and elastic
// commission/decommission of nodes exercises the power/occupancy index
// updates. Every policy must stay allocation-free through both the heap
// fast path and the outage fallback — asserted up front, not just
// reported.
func BenchmarkFederationChurnRouting(b *testing.B) {
	fed, err := dias.NewFederation(dias.FederationConfig{
		Clusters: make([]cluster.Config, 8),
		Policy:   core.PolicyNP(2),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	members := fed.Members()
	input := make(engine.Dataset, 8)
	for p := range input {
		input[p] = engine.Partition{{Key: "k", Value: 1.0}}
	}
	job := &engine.Job{
		Name:      "churn-route",
		Input:     input,
		SizeBytes: 1 << 20,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 4},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
	for i, m := range members {
		for j := 0; j < 1+i%3; j++ {
			if err := m.Scheduler.Arrive(j%2, job); err != nil {
				b.Fatal(err)
			}
		}
	}
	arr := federation.Arrival{Class: 1, Job: job, Home: 3}
	// churn flips one member in and out of an outage and one node in and
	// out of service, refreshing the filtered candidate set the way the
	// dispatcher would.
	down := false
	avail := make([]*federation.Member, 0, len(members))
	churn := func() []*federation.Member {
		if down {
			if err := fed.SetMemberDown(2, false); err != nil {
				b.Fatal(err)
			}
			if err := members[5].Engine.CommissionNode(0); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := fed.SetMemberDown(2, true); err != nil {
				b.Fatal(err)
			}
			if err := members[5].Engine.DecommissionNode(0); err != nil {
				b.Fatal(err)
			}
		}
		down = !down
		avail = avail[:0]
		for _, m := range members {
			if m.Available() {
				avail = append(avail, m)
			}
		}
		return avail
	}
	policies := []federation.RoutingPolicy{
		federation.NewRandom(1),
		federation.NewRoundRobin(),
		federation.NewJoinShortestQueue(),
		federation.NewLeastLoaded(),
		federation.NewSprintAware(),
		federation.NewDataLocal(4),
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			// Hard zero-alloc assertion on both routing paths before timing.
			candidates := churn() // member 2 down: fallback scan path
			if a := testing.AllocsPerRun(100, func() { p.Route(arr, candidates) }); a != 0 {
				b.Fatalf("%s makes %.0f allocations per route during outage", p.Name(), a)
			}
			churn() // member 2 back up: heap fast path
			if a := testing.AllocsPerRun(100, func() { p.Route(arr, members) }); a != 0 {
				b.Fatalf("%s makes %.0f allocations per route on the fast path", p.Name(), a)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for batch := 0; batch < 4; batch++ {
					cands := churn()
					for j := 0; j < 2500; j++ {
						if idx := p.Route(arr, cands); idx < 0 || idx >= len(cands) {
							b.Fatalf("routed out of range: %d", idx)
						}
					}
				}
			}
		})
	}
}

// BenchmarkFederationParallelKernel measures the conservative parallel
// kernel against the serial oracle on the 8-cluster acceptance cell:
// the same calibrated run at 1 (serial), 2, 4 and 8 sim-workers. The
// sub-benchmark ratio is the single-run federation speedup (bounded by
// the host's core count — a 1-core CI box reports ~1x). Results are
// byte-identical across all settings; the oracle test in
// internal/federation asserts that, here only wall-clock matters.
func BenchmarkFederationParallelKernel(b *testing.B) {
	ref, err := experiments.NewReferenceWorkload(1)
	if err != nil {
		b.Fatal(err)
	}
	jobs := benchScale().Jobs
	for _, sw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("simworkers-%d", sw), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ref.RunFederationCell(experiments.FederationCell{
					Name:        "parallel-bench",
					Jobs:        jobs,
					Members:     8,
					Utilization: 0.7,
					Routing: func(int64) federation.RoutingPolicy {
						return federation.NewJoinShortestQueue()
					},
					SimWorkers: sw,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.MakespanSec <= 0 {
					b.Fatalf("empty run: makespan %v", res.MakespanSec)
				}
			}
		})
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8EqualSizes, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8MoreHigh, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8HalfLoad, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11a(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Limited.String()
	}
}

func BenchmarkFigure11b(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Unlimited.String()
	}
}

func BenchmarkFigure11c(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.EnergyTable()
	}
}

func BenchmarkTable2(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table2()
	}
}

func BenchmarkAblationSprintTimeout(b *testing.B) {
	skipIfShort(b)
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSprintTimeout(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEvictionResume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEvictionResume(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDropTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDropTiming(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationModelLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationModelLevel(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionBursty(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionBursty(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionFailures(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionFailures(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionVariableSizes(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionVariableSizes(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Motivation(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionAdaptive(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}
