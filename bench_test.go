// Package dias_test hosts the full benchmark harness: one benchmark per
// table and figure of the paper's evaluation, regenerating the data the
// paper plots (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Run with
//
//	go test -bench=. -benchmem
//
// Each iteration regenerates the complete figure at QuickScale; the CLI
// cmd/dias-experiments produces the larger FullScale numbers.
package dias_test

import (
	"testing"

	"dias/internal/experiments"
)

// benchScale keeps per-iteration work bounded for testing.B.
func benchScale() experiments.Scale {
	return experiments.Scale{Jobs: 120, WarmupFraction: 0.1, Seed: 1}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8EqualSizes, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8MoreHigh, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Figure8HalfLoad, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11a(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Limited.String()
	}
}

func BenchmarkFigure11b(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Unlimited.String()
	}
}

func BenchmarkFigure11c(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.EnergyTable()
	}
}

func BenchmarkTable2(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table2()
	}
}

func BenchmarkAblationSprintTimeout(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 80
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSprintTimeout(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEvictionResume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEvictionResume(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDropTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDropTiming(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationModelLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationModelLevel(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionBursty(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionBursty(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionFailures(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionFailures(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionVariableSizes(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionVariableSizes(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Motivation(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionAdaptive(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}
