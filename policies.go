package dias

// Named-policy registries: every pluggable policy family of the middleware
// — routing (where an arrival runs), admission (whether it runs at all),
// scaling (how much capacity is powered), deflation (how much accuracy is
// traded for latency) — is constructible by name through one uniform
// surface. Callers that wire policies from configuration files or CLI
// flags resolve "jsq" or "token-bucket" here instead of reaching into the
// internal packages; callers that know the concrete type at compile time
// can keep using the internal constructors directly.
//
// Each family shares one typed options struct; every named policy reads
// only the fields it documents and ignores the rest, so one options value
// can parameterize a whole sweep.

import (
	"fmt"

	"dias/internal/admission"
	"dias/internal/core"
	"dias/internal/federation"
	"dias/internal/simtime"
)

// PolicyInfo describes one named policy of a family.
type PolicyInfo struct {
	// Name is the registry key (stable, kebab-case).
	Name string
	// Description is a one-line summary for listings and docs.
	Description string
}

// PolicyFamily is an immutable, ordered registry of named policy
// constructors sharing one options type. P is the constructed policy type,
// O the family's options struct.
type PolicyFamily[P, O any] struct {
	family  string
	entries []policyEntry[P, O]
}

type policyEntry[P, O any] struct {
	info  PolicyInfo
	build func(O) (P, error)
}

// Family returns the family's name ("routing", "admission", ...).
func (f *PolicyFamily[P, O]) Family() string { return f.family }

// Policies lists the registered policies in registration order.
func (f *PolicyFamily[P, O]) Policies() []PolicyInfo {
	out := make([]PolicyInfo, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.info
	}
	return out
}

// Names lists the registry keys in registration order.
func (f *PolicyFamily[P, O]) Names() []string {
	out := make([]string, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.info.Name
	}
	return out
}

// Lookup returns the named policy's metadata, reporting whether the name
// is registered. Spec-driven callers (the hypothesis harness, config
// loaders) use it to validate and describe a policy reference without
// constructing the policy.
func (f *PolicyFamily[P, O]) Lookup(name string) (PolicyInfo, bool) {
	for _, e := range f.entries {
		if e.info.Name == name {
			return e.info, true
		}
	}
	return PolicyInfo{}, false
}

// New constructs the named policy from the options. Unknown names error
// and list the known ones.
func (f *PolicyFamily[P, O]) New(name string, opts O) (P, error) {
	for _, e := range f.entries {
		if e.info.Name == name {
			return e.build(opts)
		}
	}
	var zero P
	return zero, fmt.Errorf("dias: unknown %s policy %q (have %v)", f.family, name, f.Names())
}

// RoutingOptions parameterizes RoutingPolicies constructors. Each policy
// reads only its own fields: Seed drives "random", DataLocalSpill bounds
// "data-local", and the rest take no options.
type RoutingOptions struct {
	// Seed drives the "random" policy's RNG (other policies ignore it).
	Seed int64
	// DataLocalSpill is the backlog at which "data-local" abandons the
	// data home for the shortest queue; 0 means the default (4).
	DataLocalSpill int
}

// RoutingPolicies returns the federation routing-policy registry: how the
// dispatcher picks a member cluster for each arrival.
func RoutingPolicies() *PolicyFamily[federation.RoutingPolicy, RoutingOptions] {
	return &PolicyFamily[federation.RoutingPolicy, RoutingOptions]{
		family: "routing",
		entries: []policyEntry[federation.RoutingPolicy, RoutingOptions]{
			{PolicyInfo{"random", "uniform random member"},
				func(o RoutingOptions) (federation.RoutingPolicy, error) {
					return federation.NewRandom(o.Seed), nil
				}},
			{PolicyInfo{"round-robin", "members in rotation"},
				func(RoutingOptions) (federation.RoutingPolicy, error) {
					return federation.NewRoundRobin(), nil
				}},
			{PolicyInfo{"jsq", "join shortest queue (class-aware backlog)"},
				func(RoutingOptions) (federation.RoutingPolicy, error) {
					return federation.NewJoinShortestQueue(), nil
				}},
			{PolicyInfo{"least-loaded", "lowest utilization-normalized load"},
				func(RoutingOptions) (federation.RoutingPolicy, error) {
					return federation.NewLeastLoaded(), nil
				}},
			{PolicyInfo{"sprint-aware", "shortest queue, sprint budget as tie-break"},
				func(RoutingOptions) (federation.RoutingPolicy, error) {
					return federation.NewSprintAware(), nil
				}},
			{PolicyInfo{"data-local", "data home unless its backlog exceeds the spill bound"},
				func(o RoutingOptions) (federation.RoutingPolicy, error) {
					spill := o.DataLocalSpill
					if spill == 0 {
						spill = 4
					}
					return federation.NewDataLocal(spill), nil
				}},
		},
	}
}

// AdmissionOptions parameterizes AdmissionPolicies constructors. Each
// policy reads only its own fields; Spill applies to every shedding policy
// (Defer instead of Reject, so a federation re-routes the overflow).
//
// The zero value is valid for every policy: each constructor substitutes
// the two-class reference defaults documented on its fields, so a registry
// sweep over names needs no per-policy configuration.
type AdmissionOptions struct {
	// Rate[k] and Burst[k] parameterize "token-bucket": class k's
	// sustained admission rate (jobs/sec) and burst capacity. Leaving
	// both nil defaults to two classes at 1 job/sec with burst 4.
	Rate  []float64
	Burst []float64
	// MaxBacklog[k] parameterizes "queue-depth": the largest backlog a
	// class-k arrival joins. Nil defaults to {8, 8}.
	MaxBacklog []int
	// BudgetSec[k], Quantile and MinObservations parameterize
	// "slo-budget": the per-class wait budget (nil = {60, 600} seconds),
	// the learned service-time quantile the wait prediction uses
	// (0 = 0.95), and the completions required before the predictor sheds
	// anything (0 = 8).
	BudgetSec       []float64
	Quantile        float64
	MinObservations int
	// Spill makes shedding policies answer Defer instead of Reject.
	Spill bool
}

// AdmissionPolicies returns the admission-policy registry: whether an
// arrival is buffered, shed, or (in a federation) re-routed. Policies are
// stateful — construct one instance per scheduler, never share.
func AdmissionPolicies() *PolicyFamily[admission.Policy, AdmissionOptions] {
	return &PolicyFamily[admission.Policy, AdmissionOptions]{
		family: "admission",
		entries: []policyEntry[admission.Policy, AdmissionOptions]{
			{PolicyInfo{"always", "admit everything (no overload control)"},
				func(AdmissionOptions) (admission.Policy, error) {
					return admission.AlwaysAdmit{}, nil
				}},
			{PolicyInfo{"token-bucket", "per-class sustained rate with bounded burst"},
				func(o AdmissionOptions) (admission.Policy, error) {
					rate, burst := o.Rate, o.Burst
					if len(rate) == 0 && len(burst) == 0 {
						rate, burst = []float64{1, 1}, []float64{4, 4}
					}
					return admission.NewTokenBucket(admission.TokenBucketConfig{
						Rate: rate, Burst: burst, Spill: o.Spill,
					})
				}},
			{PolicyInfo{"queue-depth", "shed past a per-class backlog threshold"},
				func(o AdmissionOptions) (admission.Policy, error) {
					backlog := o.MaxBacklog
					if len(backlog) == 0 {
						backlog = []int{8, 8}
					}
					return admission.NewQueueDepth(admission.QueueDepthConfig{
						MaxBacklog: backlog, Spill: o.Spill,
					})
				}},
			{PolicyInfo{"slo-budget", "shed when predicted wait exceeds the class budget"},
				func(o AdmissionOptions) (admission.Policy, error) {
					budget := o.BudgetSec
					if len(budget) == 0 {
						budget = []float64{60, 600}
					}
					return admission.NewSLOBudget(admission.SLOBudgetConfig{
						BudgetSec:       budget,
						Quantile:        o.Quantile,
						MinObservations: o.MinObservations,
						Spill:           o.Spill,
					})
				}},
		},
	}
}

// ScaleOptions parameterizes ScalePolicies constructors. "backlog" reads
// the thresholds and Step; "latency" reads TargetSec, Headroom and Step.
type ScaleOptions struct {
	// ScaleOutAbove and ScaleInBelow are "backlog"'s thresholds (the band
	// between them is hysteresis).
	ScaleOutAbove int
	ScaleInBelow  int
	// Step is the node count added or removed per decision (both policies).
	Step int
	// TargetSec is "latency"'s response-time setpoint and Headroom its
	// relative dead band (e.g. 0.25).
	TargetSec float64
	Headroom  float64
}

// ScalePolicies returns the autoscaling-policy registry: how many nodes an
// elastic deployment powers (see core.AutoscalerConfig.Policy).
func ScalePolicies() *PolicyFamily[core.ScalePolicy, ScaleOptions] {
	return &PolicyFamily[core.ScalePolicy, ScaleOptions]{
		family: "scaling",
		entries: []policyEntry[core.ScalePolicy, ScaleOptions]{
			{PolicyInfo{"backlog", "scale on queue depth with a hysteresis band"},
				func(o ScaleOptions) (core.ScalePolicy, error) {
					return core.BacklogScalePolicy{
						ScaleOutAbove: o.ScaleOutAbove,
						ScaleInBelow:  o.ScaleInBelow,
						Step:          o.Step,
					}, nil
				}},
			{PolicyInfo{"latency", "track a mean-response setpoint"},
				func(o ScaleOptions) (core.ScalePolicy, error) {
					return core.LatencyScalePolicy{
						TargetSec: o.TargetSec,
						Headroom:  o.Headroom,
						Step:      o.Step,
					}, nil
				}},
		},
	}
}

// DeflatorFactory builds a deflator bound to a stack's simulation at
// construction time (the adaptive deflator schedules on the virtual
// clock, so it cannot exist before the clock does). StackConfig.Deflation
// accepts one directly.
type DeflatorFactory func(*simtime.Simulation) (core.Deflator, error)

// DeflationOptions parameterizes DeflationPolicies constructors. "static"
// reads DropRatios; "adaptive" reads Adaptive. The zero value is valid for
// both: constructors substitute the reference defaults documented on the
// fields.
type DeflationOptions struct {
	// DropRatios[k] is "static"'s fixed per-stage drop-ratio vector for
	// class k (nil entry = no dropping). Nil defaults to the paper's
	// reference configuration: drop 20% of the low class's first stage,
	// nothing from the high class.
	DropRatios [][]float64
	// Adaptive is "adaptive"'s controller configuration. The zero value
	// defaults to a 60s low-class response target, theta capped at 0.4,
	// window 5, step 0.05, hysteresis 0.8.
	Adaptive core.AdaptiveConfig
}

// DeflationPolicies returns the deflation-policy registry: how drop ratios
// are chosen at dispatch time. Constructors return a DeflatorFactory
// because the adaptive controller needs the stack's simulation handle;
// static policies ignore it.
func DeflationPolicies() *PolicyFamily[DeflatorFactory, DeflationOptions] {
	return &PolicyFamily[DeflatorFactory, DeflationOptions]{
		family: "deflation",
		entries: []policyEntry[DeflatorFactory, DeflationOptions]{
			{PolicyInfo{"static", "fixed offline-selected drop ratios"},
				func(o DeflationOptions) (DeflatorFactory, error) {
					ratios := o.DropRatios
					if len(ratios) == 0 {
						ratios = [][]float64{{0.2}, nil}
					}
					d, err := core.NewStaticDeflator(ratios)
					if err != nil {
						return nil, err
					}
					return func(*simtime.Simulation) (core.Deflator, error) { return d, nil }, nil
				}},
			{PolicyInfo{"adaptive", "walk drop ratios online to hold latency targets"},
				func(o DeflationOptions) (DeflatorFactory, error) {
					cfg := o.Adaptive
					if len(cfg.TargetResponseSec) == 0 {
						cfg = core.AdaptiveConfig{
							TargetResponseSec: []float64{60, 0},
							MaxTheta:          []float64{0.4, 0},
							Window:            5,
							Step:              0.05,
							Hysteresis:        0.8,
						}
					}
					return func(sim *simtime.Simulation) (core.Deflator, error) {
						return core.NewAdaptiveDeflator(sim, cfg)
					}, nil
				}},
		},
	}
}
