// Model-guided knob selection: reproduce the deflator's §5.2.1 use case.
// Given (i) the offline-profiled accuracy-loss curve (Figure 6), (ii) a
// 30% accuracy tolerance for low-priority jobs and 0% for high, and
// (iii) a latency cap on high-priority mean response, the deflator
// enumerates latency-accuracy pairs with the §4 stochastic model and picks
// the smallest feasible drop ratio.
//
//	go run ./examples/modelguide
package main

import (
	"fmt"
	"os"

	"dias/internal/core"
	"dias/internal/model"
	"dias/internal/phdist"
	"dias/internal/queueing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modelguide:", err)
		os.Exit(1)
	}
}

// accuracyCurve is the profiled Figure 6 shape: ~8.5% at θ=0.1, ~15% at
// 0.2, ~32% at 0.4, growing towards ~60% at 0.8.
func accuracyCurve(theta float64) float64 {
	switch {
	case theta <= 0:
		return 0
	case theta <= 0.1:
		return 85 * theta
	case theta <= 0.2:
		return 8.5 + 65*(theta-0.1)
	case theta <= 0.4:
		return 15 + 85*(theta-0.2)
	default:
		return 32 + 70*(theta-0.4)
	}
}

// processingPH builds the wave-level §4.2 processing-time distribution for
// a 50-map-task / 10-reduce-task job on 20 slots at drop ratio theta, from
// profiled per-wave times.
func processingPH(theta, mapWaveSec, redWaveSec, setupSec, shuffleSec float64) (*phdist.PH, error) {
	setup, err := phdist.FitMeanSCV(setupSec, 0.05)
	if err != nil {
		return nil, err
	}
	shuffle, err := phdist.FitMeanSCV(shuffleSec, 0.05)
	if err != nil {
		return nil, err
	}
	mapWave, err := phdist.FitMeanSCV(mapWaveSec, 0.02)
	if err != nil {
		return nil, err
	}
	redWave, err := phdist.FitMeanSCV(redWaveSec, 0.02)
	if err != nil {
		return nil, err
	}
	cfg := model.WaveLevelConfig{
		Slots:       20,
		MapTasks:    model.FixedTasks(50),
		ReduceTasks: model.FixedTasks(10),
		ThetaMap:    theta,
		Setup:       setup,
		Shuffle:     shuffle,
		MapWave:     func(int) *phdist.PH { return mapWave },
		ReduceWave:  func(int) *phdist.PH { return redWave },
	}
	return cfg.ProcessingTime()
}

func run() error {
	// Profiled components (seconds): low jobs are 2.36x the high ones.
	const (
		lowMapWave, lowRedWave, lowSetup, lowShuffle     = 8.5, 4.1, 5.6, 2.8
		highMapWave, highRedWave, highSetup, highShuffle = 3.6, 1.7, 3.4, 1.5
		lowRate, highRate                                = 0.0160, 0.0018 // 9:1, ~80% load
	)
	predict := func(thetas []float64) ([]float64, error) {
		lowPH, err := processingPH(thetas[0], lowMapWave, lowRedWave, lowSetup, lowShuffle)
		if err != nil {
			return nil, err
		}
		highPH, err := processingPH(thetas[1], highMapWave, highRedWave, highSetup, highShuffle)
		if err != nil {
			return nil, err
		}
		return model.PredictMeanResponse([]model.ClassModel{
			{Rate: lowRate, Processing: lowPH},
			{Rate: highRate, Processing: highPH},
		}, queueing.NonPreemptive)
	}

	grid := []float64{0, 0.1, 0.2, 0.4, 0.6}
	cons := core.KnobConstraints{
		MaxErrorPct:           []float64{30, 0}, // low may lose 30%, high exact
		MaxTopMeanResponseSec: 150,
	}
	choices, err := core.EnumerateChoices(grid, accuracyCurve, cons, predict)
	if err != nil {
		return err
	}
	fmt.Println("Deflator search (latency-accuracy pairs, §5.2.1):")
	fmt.Println("theta(low)  err-low[%]  pred-low[s]  pred-high[s]  feasible")
	for _, ch := range choices {
		fmt.Printf("%9.2f  %9.1f  %11.1f  %12.1f  %v\n",
			ch.Thetas[0], ch.ErrorPct[0],
			ch.PredictedMeanResponse[0], ch.PredictedMeanResponse[1], ch.Feasible)
	}
	thetas, err := core.SelectDropRatios(grid, accuracyCurve, cons, predict)
	if err != nil {
		return err
	}
	fmt.Printf("\nselected drop ratios (low, high): %.2f, %.2f\n", thetas[0], thetas[1])
	fmt.Println("the smallest approximation meeting both the accuracy tolerance and")
	fmt.Println("the high-priority latency cap, as the paper's deflator chooses.")
	return nil
}
