// Telemetry walkthrough: one fault-stressed DiAS stack traced end to
// end — lifecycle spans, node-churn events and simtime gauges collected
// while the run executes, then exported three ways: a Chrome trace_event
// file (open trace.json at https://ui.perfetto.dev or chrome://tracing),
// the raw event stream as JSONL (feed to cmd/dias-trace), and the gauge
// timeline as CSV. The run itself is byte-identical to an untraced one:
// tracing observes, it never perturbs.
//
//	go run ./examples/telemetry
//	go run ./cmd/dias-trace -events events.jsonl
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
		os.Exit(1)
	}
}

func run() error {
	// The usual two-class word-popularity workload.
	rng := rand.New(rand.NewSource(7))
	corpus, err := workload.SynthesizeCorpus(rng, workload.DefaultCorpusConfig())
	if err != nil {
		return err
	}
	lowJob := analytics.WordPopularityJob("low", corpus, 10, 1<<28)
	highJob := analytics.WordPopularityJob("high", corpus[:len(corpus)/2], 10, 1<<27)

	// A registry keys collectors by run name; one collector holds one
	// run's spans, events and gauge timeline under fixed memory bounds
	// (reservoir-sampled job spans, capped event ring). A 30s simtime
	// gauge cadence samples queue depth, busy slots, powered nodes,
	// utilization and the admission reject rate.
	reg := telemetry.NewRegistry(telemetry.Config{GaugeIntervalSec: 30, Seed: 7})
	col := reg.Collector("walkthrough")

	// Full DiAS (differential approximation + sprinting) under node
	// churn, task faults and stragglers — the event mix that exercises
	// every tracer hook. StackConfig.Telemetry is the only extra line a
	// traced stack needs.
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
			TimeoutSec:     []float64{60, 0},
			BudgetJoules:   22e3,
			DrainWatts:     900,
			ReplenishWatts: 90,
		}),
		Faults: &faults.Config{
			Churn: &faults.ChurnConfig{MTTFSec: 900, MTTRSec: 60, HorizonSec: 4000},
			Tasks: &faults.TaskFaultConfig{
				FailProb: 0.05, MaxAttempts: 3,
				StragglerProb: 0.05, StragglerFactor: 4,
			},
			Seed: 7,
		},
		Telemetry: col,
		Seed:      7,
	})
	if err != nil {
		return err
	}
	pm, err := workload.NewPoissonMix([]float64{0.018, 0.002})
	if err != nil {
		return err
	}
	if err := stack.SubmitStream(pm, workload.FixedJobs([]*engine.Job{lowJob, highJob}), 60, 7); err != nil {
		return err
	}
	// Run drives the gauge sampler transparently: events fire at the
	// same instants as an untraced run and the clock ends in the same
	// place — gauge ticks are never simulation events.
	stack.Run()

	fmt.Printf("traced %d jobs (%d spans sampled), %d events, %d gauge samples\n",
		col.SeenJobs(), col.SampledJobs(), len(col.Events()), col.Timeline().Len())

	// Export. The Chrome trace lays runs out as processes with lifecycle
	// / engine / cluster lanes plus per-member counter tracks; Perfetto
	// renders job spans as nestable async intervals.
	for _, x := range []struct {
		path  string
		write func(*os.File) error
	}{
		{"trace.json", func(f *os.File) error { return reg.WriteChromeTrace(f) }},
		{"events.jsonl", func(f *os.File) error { return reg.WriteEventsJSONL(f) }},
		{"timeline.csv", func(f *os.File) error { return reg.WriteTimelineCSV(f) }},
	} {
		f, err := os.Create(x.path)
		if err != nil {
			return err
		}
		if err := x.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", x.path)
	}

	// The same digest dias-trace prints: per-class span statistics and
	// the slowest job's stage-level critical path.
	f, err := os.Open("events.jsonl")
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := telemetry.ReadEventsJSONL(f)
	if err != nil {
		return err
	}
	fmt.Print(telemetry.Render(telemetry.Summarize(evs, 1)))
	return nil
}
