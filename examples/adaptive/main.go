// Adaptive deflation: the paper picks drop ratios offline and re-searches
// "upon every workload change" (§5.3). This example closes the loop with
// core.AdaptiveDeflator: a two-priority stream runs calm for its first
// half, then the arrival rate nearly doubles; the controller walks the
// low class's θ up only when the overload hits and back down if it clears,
// so accuracy is spent exactly when latency needs it.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/simtime"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func buildJobs(seed int64) ([]*engine.Job, error) {
	rng := rand.New(rand.NewSource(seed))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return nil, err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return nil, err
	}
	return []*engine.Job{
		analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20),
		analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20),
	}, nil
}

// steppedStream builds a calm half followed by an overloaded half.
func steppedStream(seed int64, n int) ([]workload.Arrival, error) {
	rng := rand.New(rand.NewSource(seed))
	calm, err := workload.NewPoissonMix([]float64{0.042, 0.0047}) // ~60% load
	if err != nil {
		return nil, err
	}
	hot, err := workload.NewPoissonMix([]float64{0.078, 0.0087}) // ~110% load
	if err != nil {
		return nil, err
	}
	arr := calm.Stream(rng, n/2)
	offset := arr[len(arr)-1].At
	for _, a := range hot.Stream(rng, n-n/2) {
		arr = append(arr, workload.Arrival{At: offset + a.At, Class: a.Class})
	}
	return arr, nil
}

func run() error {
	jobs, err := buildJobs(42)
	if err != nil {
		return err
	}
	arrivals, err := steppedStream(43, 120)
	if err != nil {
		return err
	}

	runOne := func(name string, mkPolicy func(*dias.Stack) error) (*dias.Stack, error) {
		stack, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(2), Seed: 1})
		if err != nil {
			return nil, err
		}
		if mkPolicy != nil {
			if err := mkPolicy(stack); err != nil {
				return nil, err
			}
		}
		replay, err := workload.NewReplay(arrivals)
		if err != nil {
			return nil, err
		}
		if err := stack.SubmitStream(replay, workload.FixedJobs(jobs), len(arrivals), 1); err != nil {
			return nil, err
		}
		stack.Run()
		return stack, nil
	}

	// Baseline: plain NP, no dropping.
	np, err := runOne("NP", nil)
	if err != nil {
		return err
	}

	// Adaptive: target 3x the low job's unloaded execution, ceiling 0.4.
	// StackConfig.Deflation binds the controller to the stack's clock at
	// construction time; the closure keeps the concrete handle for the
	// decision log below.
	var ctl *core.AdaptiveDeflator
	adaptive, err := func() (*dias.Stack, error) {
		stack, err := dias.NewStack(dias.StackConfig{
			Policy: core.PolicyNP(2),
			Deflation: func(sim *simtime.Simulation) (core.Deflator, error) {
				var err error
				ctl, err = core.NewAdaptiveDeflator(sim, core.AdaptiveConfig{
					TargetResponseSec: []float64{60, 0},
					MaxTheta:          []float64{0.4, 0},
					Window:            6,
					Step:              0.05,
					Hysteresis:        0.6,
				})
				return ctl, err
			},
			Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		replay, err := workload.NewReplay(arrivals)
		if err != nil {
			return nil, err
		}
		if err := stack.SubmitStream(replay, workload.FixedJobs(jobs), len(arrivals), 1); err != nil {
			return nil, err
		}
		stack.Run()
		return stack, nil
	}()
	if err != nil {
		return err
	}

	report := func(name string, st *dias.Stack) {
		agg := metrics.Aggregate(st.Records(), 2, 0)
		var dropSum float64
		var n int
		for _, r := range st.Records() {
			if r.Class == 0 {
				dropSum += r.EffectiveDropRatio
				n++
			}
		}
		fmt.Printf("%-9s low mean %7.1fs  p95 %7.1fs   high mean %6.1fs   mean drop %4.1f%%\n",
			name, agg[0].MeanResponseSec, agg[0].P95ResponseSec,
			agg[1].MeanResponseSec, 100*dropSum/float64(n))
	}
	fmt.Println("Load step (calm -> ~110% load) on a 9:1 two-priority stream:")
	report("NP", np)
	report("adaptive", adaptive)
	fmt.Printf("controller decisions: %d (theta now %.2f)\n", len(ctl.History()), ctl.Theta(0))
	for _, h := range ctl.History() {
		fmt.Printf("  t=%7.0fs  theta -> %.2f  (windowed mean %.0fs)\n", h.At.Seconds(), h.Theta, h.WindowAvg)
	}
	return nil
}
