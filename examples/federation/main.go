// Federation walkthrough: shard a two-priority stream across a
// three-cluster DiAS federation and compare routing policies.
//
// Each member cluster is a complete DiAS stack (cluster + engine +
// scheduler) on one shared virtual clock; the front-end dispatcher routes
// every arrival through a pluggable policy. The run also places each job's
// input data on a home cluster, so routing a job elsewhere pays WAN
// fetches for its executed stage-0 tasks — watch DataLocal trade queueing
// for locality against JoinShortestQueue.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/engine"
	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

// buildJobs synthesizes the two class templates, one homed per cluster
// pairing below.
func buildJobs() ([]*engine.Job, error) {
	rng := rand.New(rand.NewSource(42))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return nil, err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return nil, err
	}
	low := analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20)
	low.InputPath = "/data/low-text"
	high := analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20)
	high.InputPath = "/data/high-text"
	return []*engine.Job{low, high}, nil
}

// runPolicy drives the same workload through a fresh federation under one
// routing policy and prints the per-cluster + overall rollup.
func runPolicy(routing federation.RoutingPolicy, jobs []*engine.Job) error {
	// Heterogeneous layout: two paper testbeds plus one half-size cluster.
	small := cluster.DefaultConfig()
	small.Nodes = 5
	data := dfs.DefaultConfig()
	const n = 90
	acc := metrics.NewFederationAccumulator(3, 2, n, 0.1)
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{
			{Name: "east"}, {Name: "west"}, {Name: "edge", Cluster: small},
		},
		Policy:         core.PolicyDA([]float64{0.2, 0}),
		Routing:        routing,
		Data:           &data,
		Seed:           1,
		OnRecord:       acc.Add,
		DiscardRecords: true,
	})
	if err != nil {
		return err
	}
	// Low-priority data lives on east, high-priority data on west; the
	// edge cluster holds nothing, so every job it runs reads over the WAN.
	if err := fed.RegisterInput(jobs[0], 0); err != nil {
		return err
	}
	if err := fed.RegisterInput(jobs[1], 1); err != nil {
		return err
	}
	// ~13s jobs against a ~6s mean inter-arrival: roughly 70% load on the
	// three single-job-at-a-time schedulers, enough for backlogs to form.
	mix, err := workload.NewPoissonMix([]float64{0.145, 0.016})
	if err != nil {
		return err
	}
	if err := fed.SubmitStream(mix, workload.FixedJobs(jobs), n, 7); err != nil {
		return err
	}
	fed.Run()

	makespan := fed.Sim().Now().Seconds()
	routed := fed.Routed()
	res := metrics.FederationScenarioResult{Name: routing.Name()}
	var energy float64
	for i, m := range fed.Members() {
		busy := m.Cluster.BusySlotSeconds()
		e := m.Cluster.EnergyJoules()
		energy += e
		res.PerCluster = append(res.PerCluster, metrics.ClusterResult{
			Name: m.Name, RoutedJobs: routed[i],
			PerClass:       acc.ClusterClasses(i),
			EnergyJoules:   e,
			UtilizationPct: 100 * busy / (float64(m.Cluster.Slots()) * makespan),
		})
	}
	res.Overall = metrics.ScenarioResult{
		Name: routing.Name(), PerClass: acc.OverallClasses(),
		EnergyJoules: energy, MakespanSec: makespan,
	}
	fmt.Print(metrics.FormatFederationTable(res))
	return nil
}

func run() error {
	jobs, err := buildJobs()
	if err != nil {
		return err
	}
	fmt.Println("3-cluster federation (east, west, half-size edge), DA(0,20), 9:1 stream:")
	// Routing policies resolve by name through the facade registry; the
	// options struct carries every per-policy knob (only data-local reads
	// the spill bound).
	registry := dias.RoutingPolicies()
	for _, name := range []string{"round-robin", "jsq", "data-local"} {
		routing, err := registry.New(name, dias.RoutingOptions{DataLocalSpill: 4})
		if err != nil {
			return err
		}
		if err := runPolicy(routing, jobs); err != nil {
			return err
		}
	}
	fmt.Println("JSQ balances backlog but pays WAN reads; DataLocal pins jobs to their data until the home backlog spills.")
	return nil
}
