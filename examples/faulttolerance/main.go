// Fault tolerance: the simulated dataflow engine re-executes tasks lost to
// node failures (Spark's task retry), so jobs finish with exact results at
// a latency cost. This example runs the same DA(0,20) stream on a healthy
// cluster and on one where each of the ten workers fails about once per
// simulated hour, then compares latencies, re-executed work and energy.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faulttolerance:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return err
	}
	jobs := []*engine.Job{
		analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20),
		analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20),
	}
	for _, j := range jobs {
		// Reduce tasks aggregate word-count pairs, far cheaper per record
		// than parsing posts.
		j.Stages[1].PerRecordSec = 0.002
	}

	runOne := func(faulty bool) (*dias.Stack, error) {
		stack, err := dias.NewStack(dias.StackConfig{
			Policy: core.PolicyDA([]float64{0.2, 0}),
			// Heavier per-record cost than the default: map tasks last
			// ~5s, so jobs occupy the cluster long enough for failures
			// to land on running work.
			Cost: engine.CostModel{
				TaskOverheadSec:     0.3,
				PerRecordSec:        0.1,
				SetupBaseSec:        2,
				SetupPerByte:        3e-9,
				ShuffleBaseSec:      1,
				ShufflePerRecordSec: 1e-4,
				NoiseSigma:          0.06,
			},
			Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		if faulty {
			if err := stack.InjectFailures(engine.FailureConfig{
				MTTFSec:    1200, // each worker fails ~3x per simulated hour
				MTTRSec:    120,
				HorizonSec: 2800,
				Seed:       11,
			}); err != nil {
				return nil, err
			}
		}
		mix, err := workload.NewPoissonMix([]float64{0.0315, 0.0035})
		if err != nil {
			return nil, err
		}
		if err := stack.SubmitStream(mix, workload.FixedJobs(jobs), 80, 7); err != nil {
			return nil, err
		}
		stack.Run()
		return stack, nil
	}

	healthy, err := runOne(false)
	if err != nil {
		return err
	}
	faulty, err := runOne(true)
	if err != nil {
		return err
	}

	report := func(name string, st *dias.Stack) {
		agg := metrics.Aggregate(st.Records(), 2, 0)
		fmt.Printf("%-8s low mean %7.1fs p95 %7.1fs   high mean %6.1fs   retried tasks %3d   lost work %5.0f slot-s   energy %4.0f kJ\n",
			name, agg[0].MeanResponseSec, agg[0].P95ResponseSec, agg[1].MeanResponseSec,
			st.Engine.TasksRetried(), st.Engine.FailureLostSlotSeconds(),
			st.Cluster.EnergyJoules()/1000)
	}
	fmt.Println("DA(0,20) stream, 10 workers, MTTF 20 min / MTTR 2 min per worker:")
	report("healthy", healthy)
	report("faulty", faulty)
	if got, want := len(faulty.Records()), len(healthy.Records()); got != want {
		return fmt.Errorf("faulty run lost jobs: %d vs %d", got, want)
	}
	fmt.Println("every job completed on both runs — failures cost time, not answers")
	return nil
}
