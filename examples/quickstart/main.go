// Quickstart: run a two-priority job stream through DiAS and print
// per-class latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// DiAS policy: drop 20% of low-priority map tasks, never touch the
	// high class (the paper's DA(0,20)).
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDA([]float64{0.2, 0}),
		Seed:   1,
	})
	if err != nil {
		return err
	}

	// Two corpora: low-priority jobs are ~2.4x larger, like the paper's
	// reference setup.
	rng := rand.New(rand.NewSource(42))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return err
	}
	jobs := []*engine.Job{
		analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20),
		analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20),
	}

	// Poisson arrivals, 9:1 low:high.
	mix, err := workload.NewPoissonMix([]float64{0.018, 0.002})
	if err != nil {
		return err
	}
	for _, a := range mix.Stream(rng, 60) {
		stack.SubmitAt(a.At, a.Class, jobs[a.Class])
	}
	stack.Run()

	stats := metrics.Aggregate(stack.Records(), 2, 0.1)
	fmt.Println("DiAS DA(0,20) on a 9:1 two-priority stream:")
	for k := 1; k >= 0; k-- {
		label := [2]string{"low ", "high"}[k]
		fmt.Printf("  %s  mean %7.1fs   p95 %7.1fs   jobs %d\n",
			label, stats[k].MeanResponseSec, stats[k].P95ResponseSec, stats[k].Jobs)
	}
	fmt.Printf("  energy: %.0f kJ, makespan %.0f s, no evictions, no waste\n",
		stack.Cluster.EnergyJoules()/1000, stack.Sim.Now().Seconds())
	return nil
}
