// Faults and elasticity walkthrough: one DiAS stack under the full
// injection layer — node churn, bounded-retry task faults, stragglers —
// with a backlog-driven autoscaler riding a provisioned-but-parked
// cluster. The run demonstrates the conservation guarantee (every
// submitted job completes or is reported failed with retries exhausted)
// and the elastic energy accounting (powered-node-seconds below the
// always-on bill).
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

func run() error {
	// A two-class word-popularity workload, as in the paper's evaluation.
	rng := rand.New(rand.NewSource(11))
	corpusCfg := workload.DefaultCorpusConfig()
	corpusCfg.PostsPerPartition = 40
	corpus, err := workload.SynthesizeCorpus(rng, corpusCfg)
	if err != nil {
		return err
	}
	lowJob := analytics.WordPopularityJob("low", corpus, 10, 1<<28)
	highJob := analytics.WordPopularityJob("high", corpus[:len(corpus)/2], 10, 1<<27)

	// Provision 16 nodes but let a backlog autoscaler run 4..16 of them;
	// scale-in is suppressed while the sprinter is active. The scale
	// policy resolves by name from the facade registry.
	scalePolicy, err := dias.ScalePolicies().New("backlog", dias.ScaleOptions{
		ScaleOutAbove: 3, ScaleInBelow: 1, Step: 3,
	})
	if err != nil {
		return err
	}
	cluCfg := cluster.DefaultConfig()
	cluCfg.Nodes = 16
	stack, err := dias.NewStack(dias.StackConfig{
		Cluster: cluCfg,
		Policy: core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
			TimeoutSec:     []float64{60, 0},
			BudgetJoules:   22e3,
			DrainWatts:     900,
			ReplenishWatts: 90,
		}),
		Faults: &faults.Config{
			Churn: &faults.ChurnConfig{MTTFSec: 1800, MTTRSec: 60, HorizonSec: 4000},
			Tasks: &faults.TaskFaultConfig{
				FailProb: 0.05, MaxAttempts: 3,
				StragglerProb: 0.05, StragglerFactor: 4,
			},
			Seed: 11,
		},
		Scaling: &core.AutoscalerConfig{
			Policy:       scalePolicy,
			MinNodes:     4,
			MaxNodes:     16,
			InitialNodes: 8,
			IntervalSec:  30,
			CooldownSec:  60,
			HorizonSec:   4000,
		},
		Seed: 11,
	})
	if err != nil {
		return err
	}

	// 60 arrivals over ~50 minutes of virtual time, 9:1 low:high.
	pm, err := workload.NewPoissonMix([]float64{0.018, 0.002})
	if err != nil {
		return err
	}
	if err := stack.SubmitStream(pm, workload.FixedJobs([]*engine.Job{lowJob, highJob}), 60, 11); err != nil {
		return err
	}
	stack.Run()

	var completed, failed, retries int
	for _, rec := range stack.Records() {
		if rec.Failed {
			failed++
		} else {
			completed++
		}
		retries += rec.Retries
	}
	fmt.Printf("jobs: %d completed, %d failed with retries exhausted (of 60 submitted)\n", completed, failed)
	if completed+failed != 60 {
		return fmt.Errorf("conservation violated: %d outcomes for 60 submissions", completed+failed)
	}
	inj := stack.Faults
	fmt.Printf("injected: %d node failures (%.0fs downtime), %d task faults, %d stragglers\n",
		inj.NodeFailures(), inj.DownSeconds(), inj.TaskFailuresInjected(), inj.StragglersInjected())
	fmt.Printf("engine: %d task attempts retried, %.0f slot-seconds lost to failures\n",
		stack.Engine.TasksRetried(), stack.Engine.FailureLostSlotSeconds())
	as := stack.Autoscaler
	makespan := stack.Sim.Now().Seconds()
	paid := stack.Cluster.PoweredNodeSeconds()
	fmt.Printf("autoscaler: %d scale-outs, %d scale-ins, EWMA latency %.1fs\n",
		as.ScaleOuts(), as.ScaleIns(), as.EWMAResponseSec())
	fmt.Printf("capacity: %.1f node-seconds paid vs %.1f always-on (%.0f%% saved) over %.0fs\n",
		paid, 16*makespan, 100*(1-paid/(16*makespan)), makespan)
	return nil
}
