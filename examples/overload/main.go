// Overload walkthrough: the same 2x-overloaded two-priority stream with
// and without admission control. Without it every arrival is buffered and
// latency grows with the backlog; a token-bucket admission policy (built
// by name from the facade registry) sheds the excess at the door, so the
// jobs that do run see bounded queues — the table separates goodput from
// rejected work and reports tail latency per class.
//
//	go run ./examples/overload
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overload:", err)
		os.Exit(1)
	}
}

func buildJobs() ([]*engine.Job, error) {
	rng := rand.New(rand.NewSource(42))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return nil, err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return nil, err
	}
	return []*engine.Job{
		analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20),
		analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20),
	}, nil
}

// runOne drives n arrivals at ~2x capacity through one stack and rolls the
// records up into a ScenarioResult row.
func runOne(name, policy string, opts dias.AdmissionOptions, jobs []*engine.Job) (metrics.ScenarioResult, error) {
	var res metrics.ScenarioResult
	adm, err := dias.AdmissionPolicies().New(policy, opts)
	if err != nil {
		return res, err
	}
	stack, err := dias.NewStack(dias.StackConfig{
		Policy:    core.PolicyDA([]float64{0.2, 0}),
		Admission: adm,
		Seed:      1,
	})
	if err != nil {
		return res, err
	}
	// ~13s jobs against a ~6.5s mean inter-arrival on a one-job-at-a-time
	// scheduler: roughly twice what the stack can drain.
	mix, err := workload.NewPoissonMix([]float64{0.14, 0.015})
	if err != nil {
		return res, err
	}
	const n = 80
	if err := stack.SubmitStream(mix, workload.FixedJobs(jobs), n, 7); err != nil {
		return res, err
	}
	stack.Run()
	acc := metrics.NewAccumulator(2, n, 0)
	for _, rec := range stack.Records() {
		acc.Add(rec)
	}
	res = metrics.ScenarioResult{
		Name:        name,
		PerClass:    acc.Classes(),
		MakespanSec: stack.Sim.Now().Seconds(),
	}
	res.FillOverload()
	return res, nil
}

func run() error {
	jobs, err := buildJobs()
	if err != nil {
		return err
	}
	rows := make([]metrics.ScenarioResult, 0, 2)
	for _, cell := range []struct {
		name, policy string
		opts         dias.AdmissionOptions
	}{
		{"always/2.0x", "always", dias.AdmissionOptions{}},
		// Sustained rates just under capacity, small bursts on top.
		{"token-bucket/2.0x", "token-bucket", dias.AdmissionOptions{
			Rate:  []float64{0.063, 0.007},
			Burst: []float64{6, 3},
		}},
	} {
		row, err := runOne(cell.name, cell.policy, cell.opts, jobs)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Println("2x offered load on one DiAS stack, admit-all vs token-bucket:")
	fmt.Print(metrics.FormatOverloadTable(rows...))
	fmt.Println("Token-bucket trades rejected low-priority work for bounded queues: compare P95/P99 and the rejected column.")
	return nil
}
