// Trace replay: record a scheduler trace from one run (the JSONL format of
// internal/trace, the analogue of the production cluster traces the
// paper's motivation analyzes), then replay the exact same arrival
// sequence under a different policy — an apples-to-apples comparison with
// identical arrival instants, the methodology trace studies use.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/trace"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
		os.Exit(1)
	}
}

func buildJobs() ([]*engine.Job, error) {
	rng := rand.New(rand.NewSource(42))
	lowCfg := workload.DefaultCorpusConfig()
	lowCfg.PostsPerPartition = 50
	lowCorpus, err := workload.SynthesizeCorpus(rng, lowCfg)
	if err != nil {
		return nil, err
	}
	highCfg := workload.DefaultCorpusConfig()
	highCfg.PostsPerPartition = 21
	highCorpus, err := workload.SynthesizeCorpus(rng, highCfg)
	if err != nil {
		return nil, err
	}
	return []*engine.Job{
		analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20),
		analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20),
	}, nil
}

func run() error {
	jobs, err := buildJobs()
	if err != nil {
		return err
	}

	// 1. Record: run P with tracing enabled on a fresh Poisson stream.
	log := &trace.Log{}
	pCfg := core.PolicyP(2)
	pCfg.Trace = log
	recorder, err := dias.NewStack(dias.StackConfig{Policy: pCfg, Seed: 1})
	if err != nil {
		return err
	}
	mix, err := workload.NewPoissonMix([]float64{0.055, 0.0062})
	if err != nil {
		return err
	}
	if err := recorder.SubmitStream(mix, workload.FixedJobs(jobs), 120, 7); err != nil {
		return err
	}
	recorder.Run()

	// 2. Persist + reload the trace through its JSONL wire format, as a
	// field study would with a real cluster trace.
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		return err
	}
	wire := buf.Len()
	reloaded, err := trace.ReadJSONL(&buf)
	if err != nil {
		return err
	}
	st := reloaded.Summarize()
	fmt.Printf("recorded trace: %d events (%d B JSONL), %d arrivals, %d evictions of low-priority jobs\n",
		reloaded.Len(), wire, st.ByKind[trace.Arrival], st.EvictionsByClass[0])

	// 3. Replay the identical arrival sequence under DA(0,20).
	arrivals := workload.FromTraceLog(reloaded)
	replayProc, err := workload.NewReplay(arrivals)
	if err != nil {
		return err
	}
	replayer, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDA([]float64{0.2, 0}),
		Seed:   1,
	})
	if err != nil {
		return err
	}
	if err := replayer.SubmitStream(replayProc, workload.FixedJobs(jobs), len(arrivals), 7); err != nil {
		return err
	}
	replayer.Run()

	report := func(name string, st *dias.Stack) {
		agg := metrics.Aggregate(st.Records(), 2, 0.1)
		fmt.Printf("%-9s low mean %7.1fs p95 %7.1fs   high mean %6.1fs   evictions %d\n",
			name, agg[0].MeanResponseSec, agg[0].P95ResponseSec,
			agg[1].MeanResponseSec, agg[0].Evictions)
	}
	fmt.Println("same arrival instants, two policies:")
	report("P", recorder)
	report("DA(0,20)", replayer)
	return nil
}
