// Triangle count: run the full DiAS design (approximation + sprinting) on
// the graph-analytics workload and compare it with the preemptive
// baseline, including energy (§5.3 / Figure 11).
//
//	go run ./examples/trianglecount
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trianglecount:", err)
		os.Exit(1)
	}
}

// runPolicy pushes the same 3:7 high:low graph stream through one policy.
func runPolicy(policy core.Config, job *engine.Job) (metrics.ScenarioResult, error) {
	stack, err := dias.NewStack(dias.StackConfig{Policy: policy, Seed: 5})
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	rng := rand.New(rand.NewSource(17))
	mix, err := workload.NewPoissonMix([]float64{0.0105, 0.0045}) // 7:3
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	for _, a := range mix.Stream(rng, 100) {
		stack.SubmitAt(a.At, a.Class, job)
	}
	stack.Run()
	res := metrics.ScenarioResult{
		PerClass:     metrics.Aggregate(stack.Records(), 2, 0.1),
		EnergyJoules: stack.Cluster.EnergyJoules(),
		MakespanSec:  stack.Sim.Now().Seconds(),
	}
	useful := stack.Cluster.BusySlotSeconds() - stack.Engine.WastedSlotSeconds()
	if total := useful + stack.Engine.WastedSlotSeconds(); total > 0 {
		res.ResourceWastePct = 100 * stack.Engine.WastedSlotSeconds() / total
	}
	return res, nil
}

func run() error {
	// Synthetic scale-free graph standing in for the Google web graph.
	rng := rand.New(rand.NewSource(3))
	edges, err := workload.SynthesizeGraph(rng, workload.GraphConfig{Nodes: 400, EdgesPerNode: 4})
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d edges, %d triangles (exact)\n\n", len(edges), analytics.ExactTriangles(edges))
	job := analytics.TriangleCountJob("tc", analytics.EdgeDataset(edges, 40), 40, 600<<20)

	sprint := core.SprintPolicy{
		TimeoutSec:   []float64{-1, 0}, // sprint high-priority from dispatch
		BudgetJoules: math.Inf(1),      // unlimited scenario
	}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P (preemptive baseline)", core.PolicyP(2)},
		{"NP", core.PolicyNP(2)},
		{"DiAS(0,20)+sprint", core.PolicyDiAS([]float64{0.2, 0}, sprint)},
	}
	var base metrics.ScenarioResult
	for i, p := range policies {
		res, err := runPolicy(p.policy, job)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		if i == 0 {
			base = res
			fmt.Printf("%-24s  low mean %7.1fs  high mean %7.1fs  waste %4.1f%%  energy %6.0f kJ\n",
				p.name, res.PerClass[0].MeanResponseSec, res.PerClass[1].MeanResponseSec,
				res.ResourceWastePct, res.EnergyJoules/1000)
			continue
		}
		cmp := metrics.Compare(base, res)[0]
		fmt.Printf("%-24s  low mean %+6.1f%%  high mean %+6.1f%%  waste %4.1f%%  energy %+5.1f%%\n",
			p.name, cmp.MeanDiffPct[0], cmp.MeanDiffPct[1], res.ResourceWastePct, cmp.EnergyDiffPct)
	}
	fmt.Println("\nFull DiAS improves both priority classes and cuts energy despite")
	fmt.Println("sprinting, with zero machine time wasted on evictions (§5.3).")
	return nil
}
