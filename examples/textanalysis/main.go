// Text analysis: quantify the latency-accuracy tradeoff of differential
// approximation on the StackExchange-style word-popularity workload.
// For each drop ratio, the example reports the solo job latency, the
// latency under a loaded two-priority stream, and the accuracy loss of the
// estimator-corrected word counts — the tradeoff the DiAS deflator
// navigates (§5.2).
//
//	go run ./examples/textanalysis
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "textanalysis:", err)
		os.Exit(1)
	}
}

func buildCorpus(seed int64, posts int) (engine.Dataset, error) {
	cfg := workload.DefaultCorpusConfig()
	cfg.PostsPerPartition = posts
	rng := rand.New(rand.NewSource(seed))
	return workload.SynthesizeCorpus(rng, cfg)
}

// soloRun measures one job alone on an idle stack, returning its duration
// and output word counts.
func soloRun(job *engine.Job, theta float64, seed int64) (float64, map[string]float64, error) {
	policy := core.PolicyDA([]float64{theta})
	policy.KeepOutputs = true
	stack, err := dias.NewStack(dias.StackConfig{Policy: policy, Seed: seed})
	if err != nil {
		return 0, nil, err
	}
	stack.SubmitAt(0, 0, job)
	stack.Run()
	recs := stack.Records()
	if len(recs) != 1 {
		return 0, nil, fmt.Errorf("expected 1 record, got %d", len(recs))
	}
	counts := analytics.WordCounts(recs[0].Output)
	if theta > 0 {
		counts = analytics.ScaleCounts(counts, 1-recs[0].EffectiveDropRatio)
	}
	return recs[0].ExecSec, counts, nil
}

// loadedRun measures low-class latency under a 9:1 loaded stream.
func loadedRun(low, high *engine.Job, theta float64, seed int64) (lowMean, highMean float64, err error) {
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDA([]float64{theta, 0}),
		Seed:   seed,
	})
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	mix, err := workload.NewPoissonMix([]float64{0.0225, 0.0025}) // ~80% load
	if err != nil {
		return 0, 0, err
	}
	jobs := []*engine.Job{low, high}
	for _, a := range mix.Stream(rng, 120) {
		stack.SubmitAt(a.At, a.Class, jobs[a.Class])
	}
	stack.Run()
	cs := metrics.Aggregate(stack.Records(), 2, 0.1)
	return cs[0].MeanResponseSec, cs[1].MeanResponseSec, nil
}

func run() error {
	lowCorpus, err := buildCorpus(7, 50)
	if err != nil {
		return err
	}
	highCorpus, err := buildCorpus(8, 21)
	if err != nil {
		return err
	}
	lowJob := analytics.WordPopularityJob("low-text", lowCorpus, 10, 1117<<20)
	highJob := analytics.WordPopularityJob("high-text", highCorpus, 10, 473<<20)

	_, exact, err := soloRun(lowJob, 0, 99)
	if err != nil {
		return err
	}

	fmt.Println("Differential approximation tradeoff (low-priority text job):")
	fmt.Println("theta  solo[s]  loaded-low[s]  loaded-high[s]  accuracy-loss[%]")
	for _, theta := range []float64{0, 0.1, 0.2, 0.4} {
		solo, counts, err := soloRun(lowJob, theta, 99)
		if err != nil {
			return err
		}
		mape := 0.0
		if theta > 0 {
			mape, err = analytics.WordAccuracyMAPE(exact, counts, 100)
			if err != nil {
				return err
			}
		}
		lowMean, highMean, err := loadedRun(lowJob, highJob, theta, 31)
		if err != nil {
			return err
		}
		fmt.Printf("%5.2f  %7.1f  %13.1f  %14.1f  %16.1f\n", theta, solo, lowMean, highMean, mape)
	}
	fmt.Println("\nDropping low-priority tasks cuts their latency under load at a")
	fmt.Println("bounded accuracy loss, without evicting anything (paper §5.2).")
	return nil
}
