package dias_test

import (
	"testing"

	"dias"
	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/workload"
)

func stackJobs(t *testing.T) []*engine.Job {
	t.Helper()
	corpus := make(engine.Dataset, 10)
	for p := range corpus {
		corpus[p] = engine.Partition{{Key: "w", Value: "hello world"}}
	}
	low := analytics.WordPopularityJob("low", corpus, 4, 100<<20)
	high := analytics.WordPopularityJob("high", corpus, 4, 50<<20)
	return []*engine.Job{low, high}
}

func TestStackSubmitStream(t *testing.T) {
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDA([]float64{0.2, 0}),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewPoissonMix([]float64{0.05, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stackJobs(t)
	if err := stack.SubmitStream(mix, workload.FixedJobs(jobs), 30, 7); err != nil {
		t.Fatal(err)
	}
	stack.Run()
	recs := stack.Records()
	if len(recs) != 30 {
		t.Fatalf("%d records, want 30", len(recs))
	}
	var lowDropped bool
	for _, r := range recs {
		if r.Class == 0 && r.EffectiveDropRatio > 0 {
			lowDropped = true
		}
		if r.Class == 1 && r.EffectiveDropRatio > 0 {
			t.Fatal("high-priority job was deflated under DA(0,20)")
		}
	}
	if !lowDropped {
		t.Fatal("no low-priority job was deflated")
	}
	if stack.SubmitStream(nil, workload.FixedJobs(jobs), 1, 1) == nil {
		t.Fatal("nil process accepted")
	}
}

func TestStackInjectFailures(t *testing.T) {
	stack, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(2), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.InjectFailures(engine.FailureConfig{
		MTTFSec: 200, MTTRSec: 30, HorizonSec: 2000, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewPoissonMix([]float64{0.05, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.SubmitStream(mix, workload.FixedJobs(stackJobs(t)), 40, 9); err != nil {
		t.Fatal(err)
	}
	stack.Run()
	if got := len(stack.Records()); got != 40 {
		t.Fatalf("%d records, want 40: failures must not lose jobs", got)
	}
	if stack.Cluster.DownNodes() != 0 {
		t.Fatal("nodes left down after drain")
	}
	// Bad config surfaces.
	if stack.InjectFailures(engine.FailureConfig{}) == nil {
		t.Fatal("zero config accepted")
	}
}

func TestStackFaultsAndAutoscale(t *testing.T) {
	cluCfg := cluster.DefaultConfig()
	cluCfg.Nodes = 12
	stack, err := dias.NewStack(dias.StackConfig{
		Cluster: cluCfg,
		Policy:  core.PolicyDA([]float64{0.2, 0}),
		Faults: &faults.Config{
			Churn: &faults.ChurnConfig{MTTFSec: 400, MTTRSec: 40, HorizonSec: 2000},
			Tasks: &faults.TaskFaultConfig{FailProb: 0.1, MaxAttempts: 3},
			Seed:  3,
		},
		Autoscale: &core.AutoscalerConfig{
			Policy:       core.BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 2},
			MinNodes:     4,
			MaxNodes:     12,
			InitialNodes: 6,
			IntervalSec:  20,
			HorizonSec:   2000,
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Faults == nil || stack.Autoscaler == nil {
		t.Fatal("facade did not arm the injector/autoscaler")
	}
	mix, err := workload.NewPoissonMix([]float64{0.05, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.SubmitStream(mix, workload.FixedJobs(stackJobs(t)), 40, 7); err != nil {
		t.Fatal(err)
	}
	stack.Run()
	recs := stack.Records()
	if len(recs) != 40 {
		t.Fatalf("conservation: %d records, want 40 (completed or failed)", len(recs))
	}
	if stack.Faults.TaskFailuresInjected() == 0 && stack.Faults.NodeFailures() == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	if got := stack.Cluster.CommissionedNodes(); got < 4 || got > 12 {
		t.Fatalf("commissioned nodes %d outside autoscaler bounds", got)
	}
	// A bad fault plan must fail construction loudly.
	if _, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyNP(1),
		Faults: &faults.Config{Tasks: &faults.TaskFaultConfig{FailProb: 0.5}},
	}); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
