module dias

go 1.24
