package dias_test

import (
	"fmt"

	"dias"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/workload"
)

// tinyJob builds a one-stage job over nParts identity partitions, small
// enough for example output to stay readable.
func tinyJob(name string, nParts int) *engine.Job {
	input := make(engine.Dataset, nParts)
	for p := range input {
		input[p] = engine.Partition{{Key: fmt.Sprintf("rec-%d", p), Value: 1.0}}
	}
	return &engine.Job{
		Name:      name,
		Input:     input,
		SizeBytes: 1 << 20,
		Stages:    []engine.Stage{{Name: "identity", Kind: engine.Result}},
	}
}

// ExampleNewStack wires a complete simulated deployment — virtual clock,
// cluster, dataflow engine, DiAS scheduler — submits one job per priority
// class, and drains the simulation.
func ExampleNewStack() {
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyNP(2), // non-preemptive priority, two classes
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	stack.SubmitAt(0, 0, tinyJob("low", 4))
	stack.SubmitAt(1, 1, tinyJob("high", 4))
	stack.Run()
	for _, rec := range stack.Records() {
		fmt.Printf("%s (class %d) completed: %d tasks of %d executed\n",
			rec.Name, rec.Class, 4, 4)
	}
	// Output:
	// low (class 0) completed: 4 tasks of 4 executed
	// high (class 1) completed: 4 tasks of 4 executed
}

// ExampleStack_SubmitStream drives the stack from an arrival process: a
// two-class Poisson mix over fixed job templates, the shape every figure
// driver uses. Records stream back in completion order.
func ExampleStack_SubmitStream() {
	stack, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyDA([]float64{0.2, 0}), // drop 20% of low-class tasks
		Seed:   7,
	})
	if err != nil {
		panic(err)
	}
	proc, err := workload.NewPoissonMix([]float64{0.02, 0.01}) // jobs/sec per class
	if err != nil {
		panic(err)
	}
	source := workload.FixedJobs([]*engine.Job{tinyJob("low", 10), tinyJob("high", 10)})
	if err := stack.SubmitStream(proc, source, 6, 7); err != nil {
		panic(err)
	}
	stack.Run()
	perClass := make([]int, 2)
	for _, rec := range stack.Records() {
		perClass[rec.Class]++
	}
	fmt.Printf("completed: %d low, %d high\n", perClass[0], perClass[1])
	// Output:
	// completed: 5 low, 1 high
}
