#!/usr/bin/env bash
# API-compatibility gate for the dias facade package (the supported API,
# see README.md). Exports the facade's API at a base ref via a temporary
# git worktree, diffs it against the working tree with apidiff, and fails
# on incompatible changes — unless the HEAD commit message contains the
# marker "api-break:", which records a deliberate break.
#
# Usage: ci/apidiff.sh [BASE_REF]   (default origin/main)
# Requires: go install golang.org/x/exp/cmd/apidiff@latest
set -euo pipefail

BASE_REF="${1:-origin/main}"

if ! command -v apidiff >/dev/null 2>&1; then
    echo "apidiff not found in PATH; install it with:" >&2
    echo "  go install golang.org/x/exp/cmd/apidiff@latest" >&2
    exit 1
fi

if ! base="$(git rev-parse --verify --quiet "${BASE_REF}^{commit}")"; then
    echo "apidiff: base ref ${BASE_REF} does not resolve (shallow clone?); skipping" >&2
    exit 0
fi
head="$(git rev-parse HEAD)"
if [ "$base" = "$head" ]; then
    # Push builds on the base branch compare HEAD to itself; use the
    # parent so the gate still covers the landed commit.
    if ! base="$(git rev-parse --verify --quiet HEAD~1)"; then
        echo "apidiff: no parent commit to compare against; skipping" >&2
        exit 0
    fi
fi

tmp="$(mktemp -d)"
export_file="$tmp/base.export"
worktree="$tmp/base"
cleanup() {
    git worktree remove --force "$worktree" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT

git worktree add --detach "$worktree" "$base" >/dev/null
(cd "$worktree" && apidiff -w "$export_file" .)

report="$(apidiff -incompatible "$export_file" .)"
if [ -z "$report" ]; then
    echo "apidiff: dias facade is compatible with ${BASE_REF} (${base})"
    exit 0
fi

echo "apidiff: incompatible changes to the dias facade vs ${BASE_REF} (${base}):"
echo "$report"
if git log -1 --pretty=%B | grep -qi 'api-break:'; then
    echo "apidiff: commit message carries the api-break: marker; break accepted"
    exit 0
fi
echo "apidiff: the dias package is the supported API (README.md)." >&2
echo "apidiff: restore compatibility, or mark a deliberate break by adding" >&2
echo "apidiff: a line containing 'api-break: <reason>' to the commit message." >&2
exit 1
