package dias_test

import (
	"strings"
	"testing"

	"dias"
	"dias/internal/admission"
	"dias/internal/core"
	"dias/internal/simtime"
	"dias/internal/workload"
)

// TestRegistriesConstructibleByName: every policy of every family builds
// from its registry name and one options value.
func TestRegistriesConstructibleByName(t *testing.T) {
	routing := dias.RoutingPolicies()
	for _, name := range routing.Names() {
		p, err := routing.New(name, dias.RoutingOptions{Seed: 1})
		if err != nil {
			t.Errorf("routing %q: %v", name, err)
		} else if p == nil {
			t.Errorf("routing %q: nil policy", name)
		}
	}

	admOpts := dias.AdmissionOptions{
		Rate:       []float64{1, 1},
		Burst:      []float64{2, 2},
		MaxBacklog: []int{4, 2},
		BudgetSec:  []float64{30, 10},
	}
	adm := dias.AdmissionPolicies()
	for _, name := range adm.Names() {
		p, err := adm.New(name, admOpts)
		if err != nil {
			t.Errorf("admission %q: %v", name, err)
		} else if p == nil {
			t.Errorf("admission %q: nil policy", name)
		}
	}

	scale := dias.ScalePolicies()
	for _, name := range scale.Names() {
		if _, err := scale.New(name, dias.ScaleOptions{
			ScaleOutAbove: 4, ScaleInBelow: 1, Step: 1, TargetSec: 30, Headroom: 0.25,
		}); err != nil {
			t.Errorf("scaling %q: %v", name, err)
		}
	}

	defl := dias.DeflationPolicies()
	deflOpts := dias.DeflationOptions{
		DropRatios: [][]float64{{0.2, 0.2}, nil},
		Adaptive: core.AdaptiveConfig{
			TargetResponseSec: []float64{60, 0},
			MaxTheta:          []float64{0.4, 0},
			Window:            5,
			Step:              0.05,
			Hysteresis:        0.8,
		},
	}
	for _, name := range defl.Names() {
		factory, err := defl.New(name, deflOpts)
		if err != nil {
			t.Errorf("deflation %q: %v", name, err)
			continue
		}
		d, err := factory(simtime.New())
		if err != nil {
			t.Errorf("deflation %q factory: %v", name, err)
		} else if d == nil {
			t.Errorf("deflation %q: nil deflator", name)
		}
	}
}

// TestRegistriesZeroValueOptions: every registered name in all four
// families constructs from the zero-value options struct (each constructor
// substitutes its documented reference defaults), and unknown names fail
// with the exact error enumerating the valid names.
func TestRegistriesZeroValueOptions(t *testing.T) {
	var zeroAdm dias.AdmissionOptions
	var zeroRoute dias.RoutingOptions
	var zeroScale dias.ScaleOptions
	var zeroDefl dias.DeflationOptions

	cases := []struct {
		family    string
		names     []string
		construct func(name string) (any, error)
		wantErr   string // golden unknown-name error
	}{
		{
			family: "routing",
			names:  dias.RoutingPolicies().Names(),
			construct: func(name string) (any, error) {
				return dias.RoutingPolicies().New(name, zeroRoute)
			},
			wantErr: `dias: unknown routing policy "bogus" (have [random round-robin jsq least-loaded sprint-aware data-local])`,
		},
		{
			family: "admission",
			names:  dias.AdmissionPolicies().Names(),
			construct: func(name string) (any, error) {
				return dias.AdmissionPolicies().New(name, zeroAdm)
			},
			wantErr: `dias: unknown admission policy "bogus" (have [always token-bucket queue-depth slo-budget])`,
		},
		{
			family: "scaling",
			names:  dias.ScalePolicies().Names(),
			construct: func(name string) (any, error) {
				return dias.ScalePolicies().New(name, zeroScale)
			},
			wantErr: `dias: unknown scaling policy "bogus" (have [backlog latency])`,
		},
		{
			family: "deflation",
			names:  dias.DeflationPolicies().Names(),
			construct: func(name string) (any, error) {
				factory, err := dias.DeflationPolicies().New(name, zeroDefl)
				if err != nil {
					return nil, err
				}
				// The factory is the constructed artifact; binding it to a
				// simulation must also succeed with defaulted options.
				return factory(simtime.New())
			},
			wantErr: `dias: unknown deflation policy "bogus" (have [static adaptive])`,
		},
	}
	for _, c := range cases {
		if len(c.names) == 0 {
			t.Errorf("%s: empty registry", c.family)
		}
		for _, name := range c.names {
			p, err := c.construct(name)
			if err != nil {
				t.Errorf("%s %q with zero-value options: %v", c.family, name, err)
				continue
			}
			if p == nil {
				t.Errorf("%s %q: nil policy", c.family, name)
			}
		}
		if _, err := c.construct("bogus"); err == nil {
			t.Errorf("%s: unknown name accepted", c.family)
		} else if err.Error() != c.wantErr {
			t.Errorf("%s unknown-name error:\n got  %q\n want %q", c.family, err, c.wantErr)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	info, ok := dias.RoutingPolicies().Lookup("jsq")
	if !ok || info.Name != "jsq" || info.Description == "" {
		t.Fatalf("Lookup(jsq) = %+v, %v", info, ok)
	}
	if _, ok := dias.AdmissionPolicies().Lookup("bogus"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestRegistryMetadata(t *testing.T) {
	families := []interface {
		Family() string
	}{
		dias.RoutingPolicies(), dias.AdmissionPolicies(),
		dias.ScalePolicies(), dias.DeflationPolicies(),
	}
	for _, f := range families {
		if f.Family() == "" {
			t.Error("family with empty name")
		}
	}
	infos := dias.AdmissionPolicies().Policies()
	if len(infos) != 4 {
		t.Fatalf("%d admission policies, want 4", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || info.Description == "" {
			t.Errorf("policy %+v missing name or description", info)
		}
	}
	_, err := dias.AdmissionPolicies().New("no-such", dias.AdmissionOptions{})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "token-bucket") {
		t.Errorf("error %q does not list known names", err)
	}
}

// TestStackAdmissionConservation is the facade-layer conservation check:
// every streamed submission yields exactly one record, each exactly one of
// completed, failed or rejected.
func TestStackAdmissionConservation(t *testing.T) {
	adm, err := dias.AdmissionPolicies().New("queue-depth", dias.AdmissionOptions{
		MaxBacklog: []int{3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	stack, err := dias.NewStack(dias.StackConfig{
		Policy:    core.PolicyNP(2),
		Admission: adm,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewPoissonMix([]float64{0.2, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	if err := stack.SubmitStream(mix, workload.FixedJobs(stackJobs(t)), n, 11); err != nil {
		t.Fatal(err)
	}
	stack.Run()
	recs := stack.Records()
	if len(recs) != n {
		t.Fatalf("%d records for %d submissions", len(recs), n)
	}
	var completed, rejected int
	for _, r := range recs {
		if r.Rejected {
			rejected++
		} else {
			completed++
		}
	}
	if rejected == 0 {
		t.Fatal("backlog cap never rejected; stream too gentle to test admission")
	}
	if completed+rejected != n {
		t.Fatalf("completed %d + rejected %d != %d", completed, rejected, n)
	}
	if got := stack.Scheduler.RejectedJobs(); got != rejected {
		t.Errorf("RejectedJobs() = %d, want %d", got, rejected)
	}
}

// TestFederationFacadeAdmission: NewFederation threads the per-member
// admission factory through, and conservation holds across members.
func TestFederationFacadeAdmission(t *testing.T) {
	fed, err := dias.NewFederation(dias.FederationConfig{
		Policy: core.PolicyNP(2),
		Admission: func() admission.Policy {
			p, err := dias.AdmissionPolicies().New("queue-depth", dias.AdmissionOptions{
				MaxBacklog: []int{2, 2}, Spill: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stackJobs(t)
	const n = 40
	for i := 0; i < n; i++ {
		at := 0.0
		if i >= 12 {
			at = float64(i) * 10
		}
		fed.SubmitAt(at, i%2, jobs[i%2])
	}
	fed.Run()
	var records, rejected int
	for _, m := range fed.Members() {
		for _, rec := range m.Scheduler.Records() {
			records++
			if rec.Rejected {
				rejected++
			}
		}
	}
	if records != n {
		t.Fatalf("%d records for %d submissions", records, n)
	}
	if rejected == 0 || rejected == n {
		t.Fatalf("rejected %d of %d; burst should shed some and spill some", rejected, n)
	}
}

// TestStackConfigAliases covers the deprecated/conflicting field handling.
func TestStackConfigAliases(t *testing.T) {
	scaling := &core.AutoscalerConfig{
		Policy:       core.BacklogScalePolicy{ScaleOutAbove: 2, ScaleInBelow: 1, Step: 1},
		MinNodes:     2,
		MaxNodes:     10,
		InitialNodes: 4,
		IntervalSec:  20,
		HorizonSec:   200,
	}
	// The deprecated Autoscale alias still arms the autoscaler.
	stack, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(1), Autoscale: scaling})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Autoscaler == nil {
		t.Fatal("deprecated Autoscale no longer arms the autoscaler")
	}
	// The new name works identically; both at once is an error.
	if stack, err = dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(1), Scaling: scaling}); err != nil {
		t.Fatal(err)
	}
	if stack.Autoscaler == nil {
		t.Fatal("Scaling did not arm the autoscaler")
	}
	if _, err := dias.NewStack(dias.StackConfig{
		Policy: core.PolicyNP(1), Scaling: scaling, Autoscale: scaling,
	}); err == nil {
		t.Fatal("Scaling + Autoscale accepted")
	}

	// Admission conflicts with Policy.Admission.
	cfg := core.PolicyNP(1)
	cfg.Admission = admission.AlwaysAdmit{}
	if _, err := dias.NewStack(dias.StackConfig{
		Policy: cfg, Admission: admission.AlwaysAdmit{},
	}); err == nil {
		t.Fatal("Admission + Policy.Admission accepted")
	}

	// Deflation conflicts with Policy.Deflator; a bad factory surfaces.
	static, err := dias.DeflationPolicies().New("static", dias.DeflationOptions{
		DropRatios: [][]float64{{0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	daCfg := core.PolicyDA([]float64{0.2})
	if _, err := dias.NewStack(dias.StackConfig{Policy: daCfg, Deflation: static}); err == nil {
		t.Fatal("Deflation + Policy.Deflator accepted")
	}
	stack, err = dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(1), Deflation: static})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Scheduler == nil {
		t.Fatal("stack with registry deflation missing scheduler")
	}
}
