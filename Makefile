# Single source of the build/test/bench commands: CI (.github/workflows/
# ci.yml) and humans invoke the same targets.

GO ?= go

.PHONY: build test test-short test-race cover bench bench-smoke bench-baseline bench-check determinism scale-smoke profile staticcheck fmt fmt-check vet experiments apicompat hypotheses hypotheses-check

# The reduced figure set and scale the smoke/baseline/gate pipeline runs.
# Changing it requires regenerating the committed baseline (bench-baseline).
BENCH_SMOKE_ARGS = -fig 7,federation-scaleout,faults,elasticity,scale,parallel-kernel -jobs 60 -replicas 2

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI fast lane: tests shrink their workloads under -short.
test-short:
	$(GO) test -short ./...

# The race-detector lane: short workloads under -race. The federation
# dispatcher and the internal/runner fan-out are the concurrency-bearing
# paths this guards.
test-race:
	$(GO) test -race -short ./...

# Per-package coverage over the short suite: coverage.out (the profile)
# plus coverage.txt (the per-function/per-package summary). CI's fast
# lane runs this and uploads both as the `coverage` artifact.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out > coverage.txt
	@tail -n 1 coverage.txt

# Benchmark the figure harness (short workloads; drop -short for the full
# per-figure numbers).
bench:
	$(GO) test -short -run '^$$' -bench=. -benchmem .

# The CI benchmark smoke lane: the short runner + kernel benchmarks, then
# a reduced-scale experiment run writing BENCH_results.json so the perf
# trajectory accumulates per commit (see docs/BENCHMARKING.md).
# No pipe here: /bin/sh has no pipefail, and `... | tee` would mask a
# failing benchmark behind tee's exit status.
bench-smoke:
	$(GO) test -short -run '^$$' -bench 'BenchmarkFigureSetRunner|BenchmarkKernelChurn|BenchmarkDispatcherRouting|BenchmarkFederationChurnRouting|BenchmarkFederationParallelKernel' -benchmem . > bench_smoke.txt
	cat bench_smoke.txt
	$(GO) run ./cmd/dias-experiments $(BENCH_SMOKE_ARGS) -bench-out BENCH_results.json > /dev/null

# Regenerate the committed bench-regression baseline (run on the machine
# class CI uses when the wall-clock gate matters; figure means are
# machine-independent). Commit the result.
bench-baseline:
	$(GO) run ./cmd/dias-experiments $(BENCH_SMOKE_ARGS) -bench-out docs/bench-baseline.json > /dev/null

# The CI bench-regression gate: fresh BENCH_results.json (from bench-smoke)
# vs the committed baseline. Thresholds in docs/BENCHMARKING.md. CI passes
# BENCH_CHECK_FLAGS="-min-wall-sec 2" so only figures heavy enough to be
# wall-stable are wall-gated across machine classes; figure means are
# machine-independent and always gated.
BENCH_CHECK_FLAGS ?=
bench-check:
	$(GO) run ./cmd/bench-check -baseline docs/bench-baseline.json -candidate BENCH_results.json $(BENCH_CHECK_FLAGS)

# Capture CPU and heap profiles from the figure-set benchmark (the
# profiles land in cpu.prof/mem.prof, gitignored). Inspect with
#   go tool pprof cpu.prof   /   go tool pprof mem.prof
# See docs/BENCHMARKING.md for the profiling workflow.
profile:
	$(GO) test -short -run '^$$' -bench BenchmarkFigureSetRunner -benchmem -cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

# The CI determinism lane: a reduced figure run twice, -workers 1 vs
# -workers 8, diffed byte for byte — the worker-count invariance guarantee
# as a pipeline check (faults covers the new injection layer). The second
# pair runs traced (faults + federation-scaleout) and also diffs the
# telemetry exports: the Perfetto trace and the gauge timeline must be
# byte-identical at any worker count, not just the rendered figures.
# The third pair holds the same line for the conservative parallel
# kernel: federation-scaleout and parallel-kernel at -sim-workers 1 vs 8,
# traced, with the figure text and every export (Perfetto JSON, event
# JSONL, gauge CSV) byte-diffed — the serial kernel is the oracle and
# the parallel kernel must reproduce it exactly.
determinism:
	$(GO) run ./cmd/dias-experiments -fig 7,faults -jobs 40 -workers 1 -bench-out '' > determinism-w1.txt
	$(GO) run ./cmd/dias-experiments -fig 7,faults -jobs 40 -workers 8 -bench-out '' > determinism-w8.txt
	cmp determinism-w1.txt determinism-w8.txt
	$(GO) run ./cmd/dias-experiments -fig faults,federation-scaleout -jobs 40 -workers 1 -bench-out '' -trace determinism-w1.trace.json -timeline determinism-w1.timeline.csv > determinism-traced-w1.txt
	$(GO) run ./cmd/dias-experiments -fig faults,federation-scaleout -jobs 40 -workers 8 -bench-out '' -trace determinism-w8.trace.json -timeline determinism-w8.timeline.csv > determinism-traced-w8.txt
	cmp determinism-traced-w1.txt determinism-traced-w8.txt
	cmp determinism-w1.trace.json determinism-w8.trace.json
	cmp determinism-w1.timeline.csv determinism-w8.timeline.csv
	rm -f determinism-w1.txt determinism-w8.txt determinism-traced-w1.txt determinism-traced-w8.txt determinism-w1.trace.json determinism-w8.trace.json determinism-w1.timeline.csv determinism-w8.timeline.csv
	$(GO) run ./cmd/dias-experiments -fig federation-scaleout,parallel-kernel -jobs 40 -sim-workers 1 -bench-out '' -trace determinism-sw1.trace.json -events determinism-sw1.events.jsonl -timeline determinism-sw1.timeline.csv > determinism-sw1.txt
	$(GO) run ./cmd/dias-experiments -fig federation-scaleout,parallel-kernel -jobs 40 -sim-workers 8 -bench-out '' -trace determinism-sw8.trace.json -events determinism-sw8.events.jsonl -timeline determinism-sw8.timeline.csv > determinism-sw8.txt
	cmp determinism-sw1.txt determinism-sw8.txt
	cmp determinism-sw1.trace.json determinism-sw8.trace.json
	cmp determinism-sw1.events.jsonl determinism-sw8.events.jsonl
	cmp determinism-sw1.timeline.csv determinism-sw8.timeline.csv
	rm -f determinism-sw1.txt determinism-sw8.txt determinism-sw1.trace.json determinism-sw8.trace.json determinism-sw1.events.jsonl determinism-sw8.events.jsonl determinism-sw1.timeline.csv determinism-sw8.timeline.csv

# The CI streaming-scale smoke: the scale figure at 50k jobs (its heavy
# cells replay 50k arrivals each through an 8-cluster federation on the
# bounded-memory path), run at -workers 1 and 8 and byte-diffed — the
# figure text carries no wall-clock, so it must be identical — then once
# more on the parallel kernel (-sim-workers 8) and byte-diffed against
# the serial run — with the
# memory high-water ceiling asserted on both runs. The ceiling (MiB of
# Go-runtime Sys, a monotone RSS proxy) is ~3x the observed high-water;
# a per-job leak anywhere on the streaming path blows well past it.
SCALE_SMOKE_JOBS = 50000
SCALE_SMOKE_MAX_SYS_MB = 2048
scale-smoke:
	$(GO) run ./cmd/dias-experiments -fig scale -jobs $(SCALE_SMOKE_JOBS) -workers 1 -bench-out '' -max-sys-mb $(SCALE_SMOKE_MAX_SYS_MB) > scale-smoke-w1.txt
	$(GO) run ./cmd/dias-experiments -fig scale -jobs $(SCALE_SMOKE_JOBS) -workers 8 -bench-out '' -max-sys-mb $(SCALE_SMOKE_MAX_SYS_MB) > scale-smoke-w8.txt
	cmp scale-smoke-w1.txt scale-smoke-w8.txt
	$(GO) run ./cmd/dias-experiments -fig scale -jobs $(SCALE_SMOKE_JOBS) -workers 1 -sim-workers 8 -bench-out '' -max-sys-mb $(SCALE_SMOKE_MAX_SYS_MB) > scale-smoke-sw8.txt
	cmp scale-smoke-w1.txt scale-smoke-sw8.txt
	rm -f scale-smoke-w1.txt scale-smoke-w8.txt scale-smoke-sw8.txt

# Static analysis beyond go vet (CI installs the pinned tool; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	staticcheck ./...

# The CI API-compatibility gate: the dias facade package is the supported
# API (README.md). Diffs its exported symbols against APICOMPAT_BASE and
# fails on incompatible changes unless the HEAD commit message contains
# "api-break: <reason>". The script guards for the missing tool with an
# install hint (CI installs it; locally:
# go install golang.org/x/exp/cmd/apidiff@latest).
APICOMPAT_BASE ?= origin/main
apicompat:
	./ci/apidiff.sh $(APICOMPAT_BASE)

# Format in place.
fmt:
	gofmt -w .

# Fail if any file needs formatting (used by CI).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "needs gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate every figure in parallel and write BENCH_results.json.
experiments:
	$(GO) run ./cmd/dias-experiments -bench-out BENCH_results.json

# Regenerate the committed hypothesis findings (hypotheses/*/FINDINGS.md
# and hypotheses/README.md) after an intentional behavior change; review
# the diff like any other.
hypotheses:
	$(GO) run ./cmd/dias-hypotheses

# The CI hypotheses lane: re-run every hypothesis grid and byte-compare
# against the committed findings. A policy change that flips a verdict —
# or shifts the evidence tables — fails here until the findings are
# regenerated and reviewed.
hypotheses-check:
	$(GO) run ./cmd/dias-hypotheses -check
