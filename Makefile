# Single source of the build/test/bench commands: CI (.github/workflows/
# ci.yml) and humans invoke the same targets.

GO ?= go

.PHONY: build test test-short test-race bench bench-smoke fmt fmt-check vet experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI fast lane: tests shrink their workloads under -short.
test-short:
	$(GO) test -short ./...

# The race-detector lane: short workloads under -race. The federation
# dispatcher and the internal/runner fan-out are the concurrency-bearing
# paths this guards.
test-race:
	$(GO) test -race -short ./...

# Benchmark the figure harness (short workloads; drop -short for the full
# per-figure numbers).
bench:
	$(GO) test -short -run '^$$' -bench=. -benchmem .

# The CI benchmark smoke lane: the short runner + kernel benchmarks, then
# a reduced-scale experiment run writing BENCH_results.json so the perf
# trajectory accumulates per commit (see docs/BENCHMARKING.md).
# No pipe here: /bin/sh has no pipefail, and `... | tee` would mask a
# failing benchmark behind tee's exit status.
bench-smoke:
	$(GO) test -short -run '^$$' -bench 'BenchmarkFigureSetRunner|BenchmarkKernelChurn|BenchmarkDispatcherRouting' -benchmem . > bench_smoke.txt
	cat bench_smoke.txt
	$(GO) run ./cmd/dias-experiments -fig 7,federation-scaleout -jobs 60 -replicas 2 -bench-out BENCH_results.json > /dev/null

# Format in place.
fmt:
	gofmt -w .

# Fail if any file needs formatting (used by CI).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "needs gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate every figure in parallel and write BENCH_results.json.
experiments:
	$(GO) run ./cmd/dias-experiments -bench-out BENCH_results.json
